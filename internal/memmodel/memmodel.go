// Package memmodel is the analytic memory model of the reproduction: it
// computes per-GPU model-state and activation memory for any combination
// of model shape (internal/model), hybrid-parallel plan
// (internal/parallel), and pipeline style (padded vs PFT), following the
// paper's accounting in §3.2 (Tables 1-2), §4.3, Table 4, and Appendix
// C.2 (the SSMB-vs-TED tradeoff, Eqs. 1-2).
//
// Every memory-related figure of the paper — the Fig. 3 bottleneck shift,
// Table 4 per-layer activations, Fig. 13 SSMB savings, Fig. 17 advantage
// regions, and the OOM verdicts in Figs. 9 and 20 — is derived from these
// formulas, which in turn are validated against the simulated pipelines'
// live MemTracker accounting in the integration tests.
package memmodel

import (
	"xmoe/internal/model"
	"xmoe/internal/parallel"
)

// Pipeline selects the dispatch data layout.
type Pipeline int

const (
	// PipelinePadded is the conventional fixed-capacity zero-padded
	// layout (GShard / DeepSpeed-MoE / DeepSpeed-TED / Tutel).
	PipelinePadded Pipeline = iota
	// PipelinePFT is X-MoE's padding-free token buffer layout.
	PipelinePFT
)

// Setup combines the knobs that determine memory consumption.
type Setup struct {
	// Plan is the hybrid parallel layout.
	Plan parallel.Plan
	// MicroBatch is the number of sequences each GPU processes per
	// micro-step.
	MicroBatch int
	// Pipeline selects padded vs padding-free buffers.
	Pipeline Pipeline
	// CapacityFactor is the expert capacity factor c (1.25 in §5.1).
	CapacityFactor float64
	// ElemBytes is the activation element size (2 = bf16).
	ElemBytes int
	// CombineBytes is the element size of combine-side buffers (4 models
	// Tutel's forced fp32 A_combine on AMD; 0 = ElemBytes).
	CombineBytes int
	// MaskBytes is the element size of the combine-weights mask (fp32 in
	// the conventional pipeline).
	MaskBytes int
	// NoDenseMask models Tutel's sparse dispatcher: padded buffers
	// without the dense [S, E, C] mask tensors.
	NoDenseMask bool
	// ActCkpt enables activation checkpointing: only layer inputs are
	// retained; everything else is recomputed in backward.
	ActCkpt bool
}

func (s Setup) combineBytes() int {
	if s.CombineBytes > 0 {
		return s.CombineBytes
	}
	return s.ElemBytes
}

func (s Setup) maskBytes() int {
	if s.MaskBytes > 0 {
		return s.MaskBytes
	}
	return 4
}

const (
	paramBytes = 2  // bf16 parameters
	gradBytes  = 2  // bf16 gradients
	optBytes   = 12 // fp32 master copy + Adam m/v per parameter
)

// StateBytes itemises one parameter family's per-rank model-state
// footprint: parameters, gradients, and optimizer state.
type StateBytes struct {
	Params, Grads, Opt int64
}

// Total sums the three state classes.
func (s StateBytes) Total() int64 { return s.Params + s.Grads + s.Opt }

// Add accumulates another family's states.
func (s StateBytes) Add(o StateBytes) StateBytes {
	return StateBytes{s.Params + o.Params, s.Grads + o.Grads, s.Opt + o.Opt}
}

// ZeROStates predicts the peak-rank model-state bytes of one parameter
// family of `params` elements replicated over a data-parallel group of
// size dp under the given ZeRO stage: stage 1 shards the optimizer
// state across the group, stage 2 additionally shards the gradients,
// parameters stay replicated (republished by the post-step all-gather).
// Sharding uses ceil division — the leading ranks own the remainder
// elements under the ShardRange convention, so ceil is the peak rank's
// share, the quantity memory verdicts must bound.
func ZeROStates(params int64, dp, stage int, bytesParam, bytesGrad, bytesOpt int64) StateBytes {
	d := int64(dp)
	if d < 1 {
		d = 1
	}
	shard := func(n int64) int64 { return (n + d - 1) / d }
	s := StateBytes{Params: params * bytesParam, Grads: params * bytesGrad, Opt: params * bytesOpt}
	if stage >= 1 {
		s.Opt = shard(params) * bytesOpt
	}
	if stage >= 2 {
		s.Grads = shard(params) * bytesGrad
	}
	return s
}

// CheckpointBytes predicts the peak-rank bytes one checkpoint write
// streams to stable storage, derived from the same ZeROStates sharding
// the in-memory verdicts use. expertElems counts the rank's local
// expert-parameter elements (already sharded over EP — each rank
// persists its own experts and their full optimizer state); denseElems
// counts the replicated dense parameters, whose single persisted copy
// divides across the dp writers while the optimizer copy follows the
// ZeRO stage: stage 0 keeps it replicated (one rank writes the whole
// vector — the peak this returns), stages 1+ write only the rank's
// shard. optBytes is the per-element optimizer-state size (0 for a
// stateless optimizer).
func CheckpointBytes(expertElems, denseElems int64, dp, stage int, elemBytes, optBytes int64) int64 {
	d := int64(dp)
	if d < 1 {
		d = 1
	}
	expert := ZeROStates(expertElems, 1, 0, elemBytes, 0, optBytes)
	dense := ZeROStates(denseElems, dp, stage, elemBytes, 0, optBytes)
	b := expert.Params + expert.Opt
	b += (dense.Params + d - 1) / d // one persisted copy, split across writers
	b += dense.Opt
	return b
}

// ModelStates returns the per-GPU bytes of parameters, gradients and
// optimizer states under the plan's TP/EP sharding and ZeRO stage. Expert
// parameters shard over EP and their optimizer (and ZeRO-2 gradients)
// over the expert-DP group; dense parameters shard over TP and their
// optimizer over the dense DP group.
func ModelStates(sh model.Shape, st Setup) int64 {
	return ModelStatesBreakdown(sh, st).Total()
}

// ModelStatesBreakdown is ModelStates itemised by state class, the
// quantity the abl-zero ablation reports per ZeRO stage.
func ModelStatesBreakdown(sh model.Shape, st Setup) StateBytes {
	plan := st.Plan
	expertParams := int64(sh.Layers) * sh.ExpertParamsPerLayer() / int64(plan.EP)
	denseParams := int64(sh.Layers)*(sh.AttentionParamsPerLayer()/int64(plan.TP)+sh.RouterParamsPerLayer()) +
		sh.EmbeddingParams()/int64(plan.TP)
	expert := ZeROStates(expertParams, plan.ExpertDP(), plan.ZeROStage, paramBytes, gradBytes, optBytes)
	dense := ZeROStates(denseParams, plan.DP(), plan.ZeROStage, paramBytes, gradBytes, optBytes)
	return expert.Add(dense)
}

// MoEBreakdown itemises one MoE layer's activation memory per GPU,
// mirroring §3.2's taxonomy.
type MoEBreakdown struct {
	// Mask is the dispatch-mask plus intermediate gating tensors
	// (padded pipeline only).
	Mask int64
	// ADispatch is the dispatched expert input buffer.
	ADispatch int64
	// ACombine is the expert output buffer before combining.
	ACombine int64
	// AInterm0 and AInterm1 are the expert FFN intermediate activations.
	AInterm0, AInterm1 int64
	// ERI is the PFT metadata (PFT pipeline only).
	ERI int64
}

// Total returns the summed activation bytes of the layer.
func (b MoEBreakdown) Total() int64 {
	return b.Mask + b.ADispatch + b.ACombine + b.AInterm0 + b.AInterm1 + b.ERI
}

// MoELayer computes the per-GPU activation breakdown of one MoE layer
// processing sTokens tokens per GPU (after any SSMB sharding; pass the
// dense-block token count divided by TP when the plan shards sequences).
func MoELayer(sh model.Shape, st Setup, sTokens int) MoEBreakdown {
	e, k := sh.NumExperts, sh.TopK
	h, f := int64(sh.HModel), int64(sh.HFFN)
	elem := int64(st.ElemBytes)
	comb := int64(st.combineBytes())
	capacity := int64(float64(sTokens)*float64(k)/float64(e)*st.CapacityFactor + 0.999999)
	if capacity < 1 {
		capacity = 1
	}

	var b MoEBreakdown
	switch st.Pipeline {
	case PipelinePadded:
		// DeepSpeed-style gating materialises an fp32 combine-weights
		// tensor [S, E, C] plus an elem-typed dispatch mask of the same
		// shape (the einsum operand), plus [S*K, E] one-hot/cumsum
		// intermediates — the ">70% of activation memory" of §3.1. The
		// padded buffers hold E*C rows per GPU after the even
		// all-to-all regardless of occupancy. Tutel's sparse dispatcher
		// (NoDenseMask) skips the dense mask but keeps index arrays.
		if st.NoDenseMask {
			b.Mask = int64(sTokens*k) * 16
		} else {
			b.Mask = int64(sTokens)*int64(e)*capacity*int64(st.maskBytes()+st.ElemBytes) +
				int64(sTokens*k*e)*4
		}
		rows := int64(e) * capacity
		b.ADispatch = rows * h * elem
		b.ACombine = rows * h * comb
		b.AInterm0 = rows * f * elem
		b.AInterm1 = rows * f * elem
	case PipelinePFT:
		rows := int64(sTokens) * int64(k)
		if max := int64(e) * capacity; rows > max {
			rows = max
		}
		b.ADispatch = rows * h * elem
		b.ACombine = rows * h * comb
		b.AInterm0 = rows * f * elem
		b.AInterm1 = rows * f * elem
		b.ERI = rows*12 + int64(e)*4
	}
	return b
}

// DenseLayerActivations returns the per-GPU activation bytes of one dense
// (attention) block processing sTokens tokens: TP shards the in-block
// activations while block inputs/outputs stay duplicated.
func DenseLayerActivations(sh model.Shape, st Setup, sTokens int) int64 {
	h := int64(sh.HModel)
	elem := int64(st.ElemBytes)
	// The block boundary tensor is counted once (the output is the next
	// block's input); in-block activations shard over TP.
	duplicated := int64(sTokens) * h * elem
	sharded := 8 * int64(sTokens) * h * elem / int64(st.Plan.TP) // qkv, scores-proxy, proj, norms
	return duplicated + sharded
}

// Activations returns the total per-GPU activation bytes for one
// micro-step across all layers, honouring SSMB sequence sharding and
// activation checkpointing.
func Activations(sh model.Shape, st Setup) int64 {
	sTokens := st.MicroBatch * sh.SeqLen
	sMoE := sTokens
	if st.Plan.SSMB && st.Plan.TP > 1 {
		sMoE = (sTokens + st.Plan.TP - 1) / st.Plan.TP
	}
	moe := MoELayer(sh, st, sMoE).Total()
	dense := DenseLayerActivations(sh, st, sTokens)
	perLayer := moe + dense
	elem := int64(st.ElemBytes)
	layerInput := int64(sTokens) * int64(sh.HModel) * elem

	if st.ActCkpt {
		// Keep one checkpoint per layer plus one layer's live
		// activations during recomputation.
		return int64(sh.Layers)*layerInput + perLayer + 2*layerInput
	}
	embed := 2 * layerInput // embedding output + logits-side activations
	return int64(sh.Layers)*perLayer + embed
}

// SSMBSaving returns Eq. 1: the per-device activation bytes SSMB saves at
// TP degree g (half precision, dispatch+combine both scale with c*k*S*H).
func SSMBSaving(c float64, k, sTokens, h, g int) float64 {
	if g <= 1 {
		return 0
	}
	return 4 * c * float64(k) * float64(sTokens) * float64(h) * float64(g-1) / float64(g)
}

// TEDMinCost returns Eq. 2: the minimum extra model-state bytes of
// choosing SSMB over TED at TP degree g (the expert parameters TED would
// have sharded).
func TEDMinCost(hFFN, h, g int) float64 {
	if g <= 1 {
		return 0
	}
	return 8 * float64(hFFN) * float64(h) * float64(g-1) / float64(g)
}

// SSMBAdvantage reports whether SSMB saves more memory than TED for the
// given architecture and sequence length: r = k/H_FFN > 2/(c*S)
// (§4.3's tradeoff condition).
func SSMBAdvantage(k, hFFN int, c float64, sTokens int) bool {
	r := float64(k) / float64(hFFN)
	return r > 2/(c*float64(sTokens))
}

// AdvantageBorderTopK returns, for Fig. 17's advantage-region plot, the
// top-k value at which SSMB and TED break even for a given intermediate
// dimension and sequence length: k* = 2*H_FFN/(c*S).
func AdvantageBorderTopK(hFFN int, c float64, sTokens int) float64 {
	return 2 * float64(hFFN) / (c * float64(sTokens))
}
