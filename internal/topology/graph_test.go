package topology

import "testing"

func TestFlatMachineValidates(t *testing.T) {
	for _, n := range []int{2, 8, 64} {
		m := Flat(n)
		if err := m.Validate(); err != nil {
			t.Fatalf("Flat(%d): %v", n, err)
		}
		if m.NumNodes(n) != 1 {
			t.Fatalf("Flat(%d) spans %d nodes, want 1", n, m.NumNodes(n))
		}
		// Every distinct pair sits on the fastest tier: the single-class
		// regime the cross-validation suite relies on.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				want := LinkGCDPair
				if a == b {
					want = LinkLocal
				}
				if got := m.Classify(a, b); got != want {
					t.Fatalf("Flat(%d).Classify(%d,%d) = %v, want %v", n, a, b, got, want)
				}
			}
		}
	}
}

func TestFlatGraphRoutesArePortPairs(t *testing.T) {
	n := 8
	g := FlatGraph(Flat(n), n)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			path := g.Route(s, d, nil)
			if len(path) != 2 || path[0] != LinkID(s) || path[1] != LinkID(n+d) {
				t.Fatalf("route %d→%d = %v, want [eg%d in%d]", s, d, path, s, d)
			}
			for _, id := range path {
				if !g.Link(id).ClassBound || g.Link(id).Shared {
					t.Fatalf("flat link %s must be class-bound and unshared", g.Link(id).Name)
				}
			}
		}
	}
}

func TestFlatGraphRejectsMultiNodeSpan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlatGraph accepted a 2-node span")
		}
	}()
	FlatGraph(Frontier(), 16)
}

func TestRailGraphSharedTrunks(t *testing.T) {
	m := Frontier()
	n := 64 // 8 nodes, one rack
	g := RailGraph(m, n, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-node transfers never touch a trunk.
	path := g.Route(0, 1, nil)
	if len(path) != 2 {
		t.Fatalf("intra-node route = %v, want port pair", path)
	}
	// Inter-node transfers traverse exactly src NIC up + dst NIC down.
	path = g.Route(0, 63, nil)
	if len(path) != 4 {
		t.Fatalf("inter-node route = %v, want 4 hops", path)
	}
	up, down := g.Link(path[1]), g.Link(path[2])
	if up.Name != "nic0.up" || down.Name != "nic7.down" {
		t.Fatalf("inter-node trunks = %s, %s", up.Name, down.Name)
	}
	for _, l := range []*GraphLink{up, down} {
		if !l.Shared || l.Class != LinkInterNode || l.Bandwidth != m.NodeNICBandwidth {
			t.Fatalf("NIC trunk %s: Shared=%v Class=%v BW=%g", l.Name, l.Shared, l.Class, l.Bandwidth)
		}
	}
	// Single-rack spans build no spine links.
	for _, l := range g.Links {
		if l.Class == LinkCrossRack {
			t.Fatalf("single-rack rail graph has spine link %s", l.Name)
		}
	}
}

func TestRailGraphSpineOversubscription(t *testing.T) {
	m := Frontier()
	n := 2 * m.NodesPerRack * m.GPUsPerNode // two full racks
	g := RailGraph(m, n, 4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	path := g.Route(0, n-1, nil)
	if len(path) != 6 {
		t.Fatalf("cross-rack route = %v, want 6 hops", path)
	}
	spine := g.Link(path[2])
	wantBW := float64(m.NodesPerRack) * m.NodeNICBandwidth / 4
	if spine.Class != LinkCrossRack || !spine.Shared || spine.Bandwidth != wantBW {
		t.Fatalf("spine %s: Class=%v Shared=%v BW=%g want %g",
			spine.Name, spine.Class, spine.Shared, spine.Bandwidth, wantBW)
	}
}

func TestNoCGraphCrossbarSplicing(t *testing.T) {
	m := Frontier()
	n := 16 // two nodes
	g := NoCGraph(m, n, 0)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Intra-pair: port pair only, crossbar bypassed.
	if path := g.Route(0, 1, nil); len(path) != 2 {
		t.Fatalf("intra-pair route = %v, want port pair", path)
	}
	// Cross-pair same node: eg, xbar up, xbar down, in.
	path := g.Route(0, 7, nil)
	if len(path) != 4 || g.Link(path[1]).Name != "xbar0.up" || g.Link(path[2]).Name != "xbar3.down" {
		t.Fatalf("cross-pair route = %v (%s, %s)", path, g.Link(path[1]).Name, g.Link(path[2]).Name)
	}
	// Inter-node: crossbars bracket the NIC trunks.
	path = g.Route(0, 15, nil)
	if len(path) != 6 {
		t.Fatalf("inter-node route = %v, want 6 hops", path)
	}
	names := make([]string, len(path))
	for i, id := range path {
		names[i] = g.Link(id).Name
	}
	want := []string{"eg0", "xbar0.up", "nic0.up", "nic1.down", "xbar7.down", "in15"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("inter-node route = %v, want %v", names, want)
		}
	}
	// Crossbar bandwidth aggregates the pair's intra-node links.
	xb := g.Link(path[1])
	if wantBW := m.Link(LinkIntraNode).Bandwidth * float64(m.GPUsPerPair); xb.Bandwidth != wantBW {
		t.Fatalf("crossbar BW = %g, want %g", xb.Bandwidth, wantBW)
	}
}
