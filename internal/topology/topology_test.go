package topology

import (
	"testing"
	"testing/quick"
)

func TestFrontierValid(t *testing.T) {
	m := Frontier()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.GPUsPerNode != 8 || m.GPUsPerPair != 2 || m.NodesPerRack != 32 {
		t.Fatalf("unexpected Frontier layout: %+v", m)
	}
	if m.Device.MemBytes != 64e9 {
		t.Fatalf("MI250X GCD memory = %d, want 64 GB", m.Device.MemBytes)
	}
}

func TestDGXA100Valid(t *testing.T) {
	m := DGXA100()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Device.MemBytes != 40e9 {
		t.Fatalf("A100 memory = %d, want 40 GB", m.Device.MemBytes)
	}
}

func TestNodeRackMapping(t *testing.T) {
	m := Frontier()
	if m.NodeOf(0) != 0 || m.NodeOf(7) != 0 || m.NodeOf(8) != 1 {
		t.Fatal("NodeOf wrong")
	}
	if m.LocalRank(13) != 5 {
		t.Fatalf("LocalRank(13) = %d, want 5", m.LocalRank(13))
	}
	// Rack = 32 nodes = 256 GPUs.
	if m.RackOf(255) != 0 || m.RackOf(256) != 1 {
		t.Fatalf("RackOf(255)=%d RackOf(256)=%d", m.RackOf(255), m.RackOf(256))
	}
	if m.NumNodes(1024) != 128 || m.NumRacks(1024) != 4 {
		t.Fatalf("NumNodes/NumRacks(1024) = %d/%d, want 128/4", m.NumNodes(1024), m.NumRacks(1024))
	}
	if m.NumNodes(9) != 2 {
		t.Fatalf("NumNodes(9) = %d, want 2", m.NumNodes(9))
	}
}

func TestClassify(t *testing.T) {
	m := Frontier()
	cases := []struct {
		a, b int
		want LinkClass
	}{
		{0, 0, LinkLocal},
		{0, 1, LinkGCDPair},     // GCDs 0,1 share an MI250X
		{0, 2, LinkIntraNode},   // same node, different package
		{0, 7, LinkIntraNode},   // same node
		{0, 8, LinkInterNode},   // next node, same rack
		{0, 255, LinkInterNode}, // last GPU of rack 0
		{0, 256, LinkCrossRack}, // first GPU of rack 1
		{300, 301, LinkGCDPair}, // pair structure holds at high ranks
		{300, 1023, LinkCrossRack},
	}
	for _, c := range cases {
		if got := m.Classify(c.a, c.b); got != c.want {
			t.Errorf("Classify(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestClassifySymmetric(t *testing.T) {
	m := Frontier()
	f := func(a, b uint16) bool {
		x, y := int(a)%1024, int(b)%1024
		return m.Classify(x, y) == m.Classify(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkOrderingFasterTiersHaveMoreBandwidth(t *testing.T) {
	for _, m := range []*Machine{Frontier(), DGXA100()} {
		order := []LinkClass{LinkLocal, LinkGCDPair, LinkIntraNode, LinkInterNode, LinkCrossRack}
		for i := 1; i < len(order); i++ {
			if m.Link(order[i]).Bandwidth > m.Link(order[i-1]).Bandwidth {
				t.Errorf("%s: %v bandwidth exceeds %v", m.Name, order[i], order[i-1])
			}
		}
	}
}

func TestFrontierBandwidthAsymmetry(t *testing.T) {
	// The paper's Takeaway-3 rests on the 200 vs 25 GB/s asymmetry; the
	// model must preserve an 8x gap between GCD-pair and inter-node links.
	m := Frontier()
	ratio := m.Link(LinkGCDPair).Bandwidth / m.Link(LinkInterNode).Bandwidth
	if ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("intra/inter bandwidth ratio = %.2f, want 8.0", ratio)
	}
}

func TestValidateCatchesBrokenMachines(t *testing.T) {
	m := Frontier()
	m.GPUsPerPair = 3 // 8 % 3 != 0
	if err := m.Validate(); err == nil {
		t.Fatal("expected validation error for indivisible pair size")
	}
	m2 := Frontier()
	delete(m2.Links, LinkInterNode)
	if err := m2.Validate(); err == nil {
		t.Fatal("expected validation error for missing link class")
	}
	m3 := Frontier()
	m3.Device.PeakFLOPs = 0
	if err := m3.Validate(); err == nil {
		t.Fatal("expected validation error for zero peak FLOPs")
	}
}
