package topology

import "fmt"

// Graphs are the link-level view of a Machine consumed by the event-driven
// simulation engine (internal/devent): explicit serialisable resources
// (per-rank injection/ejection ports, shared NIC trunks, rack spines,
// NoC-style crossbars) connected by a routing function. The analytic model
// (internal/netsim) works from the Machine's class table alone; the event
// engine schedules every transfer over a Graph's links, so contention on
// shared resources emerges from the schedule instead of being folded into
// closed-form aggregates.

// LinkID indexes Graph.Links.
type LinkID int32

// GraphLink is one directed, serialisable resource in a topology graph.
type GraphLink struct {
	ID   LinkID
	Name string
	// Class is the link tier used for byte accounting and degraded-link
	// derates (the same vocabulary as the analytic model).
	Class LinkClass
	// Latency and Bandwidth are the α–β parameters of the resource.
	// ClassBound links ignore them (see below).
	Latency   float64
	Bandwidth float64
	// ClassBound marks per-rank ports whose effective α–β follow the
	// *transfer's* classified link class rather than a fixed spec: a GPU's
	// injection port runs at GCD-pair speed when feeding its pair sibling
	// and at inter-node speed when feeding the fabric, exactly as the
	// analytic model charges per-destination serialisation.
	ClassBound bool
	// Shared marks resources multiplexed by many ranks (NIC trunks, rack
	// spines, node crossbars) — where queueing/fair-share contention
	// appears.
	Shared bool
}

// Graph is a topology as the event engine sees it: links plus a route
// function mapping each (src, dst) rank pair to the ordered links its
// transfers traverse. Ranks are the same dense global indices the Machine
// uses.
type Graph struct {
	Name     string
	M        *Machine
	NumRanks int
	Links    []GraphLink
	// route appends the link IDs of the src→dst path to buf and returns
	// the extended slice. Builders guarantee it is pure and concurrency-
	// safe.
	route func(src, dst int, buf []LinkID) []LinkID
}

// Route appends the links of the src→dst path to buf (which may be nil)
// and returns the extended slice.
func (g *Graph) Route(src, dst int, buf []LinkID) []LinkID {
	return g.route(src, dst, buf)
}

// Link returns the graph link with the given ID.
func (g *Graph) Link(id LinkID) *GraphLink { return &g.Links[id] }

// Validate checks structural consistency: link IDs dense, specs sane, and
// every rank pair routable over existing links.
func (g *Graph) Validate() error {
	if g.NumRanks <= 0 {
		return fmt.Errorf("topology: graph %s: no ranks", g.Name)
	}
	for i, l := range g.Links {
		if int(l.ID) != i {
			return fmt.Errorf("topology: graph %s: link %d has ID %d", g.Name, i, l.ID)
		}
		if !l.ClassBound && (l.Bandwidth <= 0 || l.Latency < 0) {
			return fmt.Errorf("topology: graph %s: link %s has invalid spec", g.Name, l.Name)
		}
	}
	var buf []LinkID
	for s := 0; s < g.NumRanks; s++ {
		for d := 0; d < g.NumRanks; d++ {
			buf = g.route(s, d, buf[:0])
			for _, id := range buf {
				if int(id) < 0 || int(id) >= len(g.Links) {
					return fmt.Errorf("topology: graph %s: route %d→%d uses unknown link %d",
						g.Name, s, d, id)
				}
			}
		}
	}
	return nil
}

// Flat returns a synthetic single-switch machine of n ranks: one node,
// every pair connected at the same GCD-pair tier, and an effectively
// unconstrained NIC. It is the contention-free reference platform of the
// event-engine cross-validation suite (and available to the CLIs as
// "flat<N>"): with a single link class and no shared trunks, the event
// engine's schedule must telescope to the analytic model's closed forms.
func Flat(n int) *Machine {
	pair := LinkSpec{Latency: 1.5e-6, Bandwidth: 200 * gb}
	return &Machine{
		Name:             fmt.Sprintf("flat%d", n),
		GPUsPerNode:      n,
		GPUsPerPair:      n,
		NodesPerRack:     1,
		NodeNICBandwidth: 100 * gb,
		Links: map[LinkClass]LinkSpec{
			LinkLocal:     {Latency: 0, Bandwidth: 1300 * gb},
			LinkGCDPair:   pair,
			LinkIntraNode: pair,
			LinkInterNode: {Latency: 4e-6, Bandwidth: 25 * gb},
			LinkCrossRack: {Latency: 8e-6, Bandwidth: 25 * gb},
		},
		Device: Frontier().Device,
	}
}

// portGraph lays out the per-rank injection/ejection ports shared by all
// graph builders: egress port of rank r is link r, ingress port is n+r.
func portGraph(name string, m *Machine, n int) *Graph {
	g := &Graph{Name: name, M: m, NumRanks: n}
	for r := 0; r < n; r++ {
		g.Links = append(g.Links, GraphLink{
			ID: LinkID(r), Name: fmt.Sprintf("eg%d", r), ClassBound: true,
		})
	}
	for r := 0; r < n; r++ {
		g.Links = append(g.Links, GraphLink{
			ID: LinkID(n + r), Name: fmt.Sprintf("in%d", r), ClassBound: true,
		})
	}
	return g
}

func (g *Graph) egress(r int) LinkID  { return LinkID(r) }
func (g *Graph) ingress(r int) LinkID { return LinkID(g.NumRanks + r) }

// FlatGraph builds the contention-free flat graph over the first n ranks
// of machine m: per-rank egress and ingress ports only, every transfer
// served at its pair's class tier, no shared trunks. All n ranks must fit
// on one node (the regime where the analytic identities are exact); use
// RailGraph or NoCGraph for multi-node spans.
func FlatGraph(m *Machine, n int) *Graph {
	if m.NumNodes(n) != 1 {
		panic(fmt.Sprintf("topology: FlatGraph wants a single-node span, %d ranks need %d %s nodes",
			n, m.NumNodes(n), m.Name))
	}
	g := portGraph("flat", m, n)
	g.route = func(src, dst int, buf []LinkID) []LinkID {
		return append(buf, g.egress(src), g.ingress(dst))
	}
	return g
}

// RailGraph builds the 2-level node/rail graph over the first n ranks of
// machine m: per-rank ports, one shared NIC trunk per node and direction
// (the node's aggregate injection bandwidth, which all its GPUs contend
// for), and — when the span crosses racks — one shared spine trunk per
// rack and direction whose bandwidth is the rack's aggregate NIC rate
// divided by oversub (Dragonfly global-link oversubscription; oversub <= 0
// selects the default of 4).
func RailGraph(m *Machine, n int, oversub float64) *Graph {
	if oversub <= 0 {
		oversub = 4
	}
	g := portGraph("rail", m, n)
	nodes := m.NumNodes(n)
	racks := m.NumRacks(n)
	nicUp := make([]LinkID, nodes)
	nicDown := make([]LinkID, nodes)
	for nd := 0; nd < nodes; nd++ {
		nicUp[nd] = LinkID(len(g.Links))
		g.Links = append(g.Links, GraphLink{
			ID: nicUp[nd], Name: fmt.Sprintf("nic%d.up", nd),
			Class: LinkInterNode, Bandwidth: m.NodeNICBandwidth, Shared: true,
		})
		nicDown[nd] = LinkID(len(g.Links))
		g.Links = append(g.Links, GraphLink{
			ID: nicDown[nd], Name: fmt.Sprintf("nic%d.down", nd),
			Class: LinkInterNode, Bandwidth: m.NodeNICBandwidth, Shared: true,
		})
	}
	var spineUp, spineDown []LinkID
	if racks > 1 {
		spineBW := float64(m.NodesPerRack) * m.NodeNICBandwidth / oversub
		spineUp = make([]LinkID, racks)
		spineDown = make([]LinkID, racks)
		for rk := 0; rk < racks; rk++ {
			spineUp[rk] = LinkID(len(g.Links))
			g.Links = append(g.Links, GraphLink{
				ID: spineUp[rk], Name: fmt.Sprintf("spine%d.up", rk),
				Class: LinkCrossRack, Bandwidth: spineBW, Shared: true,
			})
			spineDown[rk] = LinkID(len(g.Links))
			g.Links = append(g.Links, GraphLink{
				ID: spineDown[rk], Name: fmt.Sprintf("spine%d.down", rk),
				Class: LinkCrossRack, Bandwidth: spineBW, Shared: true,
			})
		}
	}
	g.route = func(src, dst int, buf []LinkID) []LinkID {
		buf = append(buf, g.egress(src))
		sn, dn := m.NodeOf(src), m.NodeOf(dst)
		if sn != dn {
			buf = append(buf, nicUp[sn])
			if sr, dr := m.RackOf(src), m.RackOf(dst); sr != dr {
				buf = append(buf, spineUp[sr], spineDown[dr])
			}
			buf = append(buf, nicDown[dn])
		}
		return append(buf, g.ingress(dst))
	}
	return g
}

// NoCGraph builds the NoC-style hierarchical graph over the first n ranks
// of machine m, mirroring the chiplet topologies of uPimulator-class
// simulators: per-rank ports, one shared crossbar trunk per GCD pair and
// direction bridging the pair onto the node-local NoC (aggregate intra-node
// bandwidth of the pair's members), then the node NIC trunks and rack
// spines of RailGraph above it. Intra-pair transfers bypass the crossbar.
func NoCGraph(m *Machine, n int, oversub float64) *Graph {
	rail := RailGraph(m, n, oversub)
	g := &Graph{Name: "noc", M: m, NumRanks: n, Links: rail.Links}
	pairSize := m.GPUsPerPair
	pairsPerNode := m.GPUsPerNode / pairSize
	pairOf := func(r int) int {
		return m.NodeOf(r)*pairsPerNode + m.LocalRank(r)/pairSize
	}
	numPairs := pairOf(n-1) + 1
	intra := m.Link(LinkIntraNode)
	xbarBW := intra.Bandwidth * float64(pairSize)
	xbUp := make([]LinkID, numPairs)
	xbDown := make([]LinkID, numPairs)
	for p := 0; p < numPairs; p++ {
		xbUp[p] = LinkID(len(g.Links))
		g.Links = append(g.Links, GraphLink{
			ID: xbUp[p], Name: fmt.Sprintf("xbar%d.up", p),
			Class: LinkIntraNode, Latency: intra.Latency, Bandwidth: xbarBW, Shared: true,
		})
		xbDown[p] = LinkID(len(g.Links))
		g.Links = append(g.Links, GraphLink{
			ID: xbDown[p], Name: fmt.Sprintf("xbar%d.down", p),
			Class: LinkIntraNode, Latency: intra.Latency, Bandwidth: xbarBW, Shared: true,
		})
	}
	g.route = func(src, dst int, buf []LinkID) []LinkID {
		sp, dp := pairOf(src), pairOf(dst)
		if sp == dp {
			return append(buf, g.egress(src), g.ingress(dst))
		}
		// Rebuild the rail path and splice the crossbar hops in after the
		// egress port and before the ingress port.
		rail := rail.route(src, dst, nil)
		buf = append(buf, rail[0], xbUp[sp])
		buf = append(buf, rail[1:len(rail)-1]...)
		return append(buf, xbDown[dp], rail[len(rail)-1])
	}
	return g
}
