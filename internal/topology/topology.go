// Package topology models the hierarchical interconnects of the HPC
// platforms the paper evaluates on: the Frontier supercomputer (AMD MI250X
// GCDs, Infinity Fabric intra-node, Slingshot Dragonfly inter-node) and a
// DGX-style NVIDIA A100 node for the cross-platform experiment (Table 5).
//
// The central abstraction is the Machine: a description of how global
// ranks map onto GPUs, nodes and racks, and what latency/bandwidth each
// class of link provides. The network simulator (internal/netsim) consumes
// these link parameters to cost collectives; the placement planner
// (internal/parallel) consumes the hierarchy to decide expert and replica
// placement (EP-first vs DP-first, Appendix C.1).
package topology

import "fmt"

// LinkClass identifies the bandwidth tier a point-to-point transfer
// traverses. Classes are ordered from fastest to slowest.
type LinkClass int

const (
	// LinkLocal is a transfer from a rank to itself (an HBM copy).
	LinkLocal LinkClass = iota
	// LinkGCDPair connects the two GCDs on one MI250X package
	// (Infinity Fabric, 200 GB/s on Frontier) or an NVLink pair.
	LinkGCDPair
	// LinkIntraNode connects GPUs in the same node that are not a
	// GCD pair (Infinity Fabric, 50-100 GB/s on Frontier).
	LinkIntraNode
	// LinkInterNode connects nodes in the same rack/group over the
	// Slingshot fabric (25 GB/s per NIC on Frontier).
	LinkInterNode
	// LinkCrossRack connects nodes in different racks through Dragonfly
	// global links, which are subject to congestion from other jobs.
	LinkCrossRack
)

// String returns a short human-readable name for the link class.
func (c LinkClass) String() string {
	switch c {
	case LinkLocal:
		return "local"
	case LinkGCDPair:
		return "gcd-pair"
	case LinkIntraNode:
		return "intra-node"
	case LinkInterNode:
		return "inter-node"
	case LinkCrossRack:
		return "cross-rack"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// DeviceProfile describes the compute device attached to each rank.
type DeviceProfile struct {
	// Name identifies the device, e.g. "MI250X-GCD" or "A100-40GB".
	Name string
	// PeakFLOPs is the peak half-precision throughput in FLOP/s of one
	// effective GPU (one GCD on Frontier: 191.5e12).
	PeakFLOPs float64
	// MemBytes is the HBM capacity in bytes (64 GiB per GCD, 40 GiB A100).
	MemBytes int64
	// HBMBandwidth is the device memory bandwidth in bytes/s, which
	// bounds the bandwidth-bound gather/scatter kernels.
	HBMBandwidth float64
}

// LinkSpec gives the α–β parameters of one link class.
type LinkSpec struct {
	// Latency is the per-message startup cost α in seconds.
	Latency float64
	// Bandwidth is the sustained point-to-point bandwidth β in bytes/s.
	Bandwidth float64
}

// Machine describes a cluster: the per-node GPU layout, the rack size, and
// the link table. Ranks are dense global GPU indices laid out node-major:
// rank r lives on node r/GPUsPerNode at local index r%GPUsPerNode.
type Machine struct {
	// Name identifies the platform (e.g. "frontier").
	Name string
	// GPUsPerNode is the number of effective GPUs per node (8 GCDs on
	// Frontier, 8 A100s in a DGX box).
	GPUsPerNode int
	// GPUsPerPair is the number of GPUs sharing the fastest intra-node
	// tier (2 GCDs per MI250X). Set to GPUsPerNode if there is a single
	// flat intra-node tier (NVSwitch).
	GPUsPerPair int
	// NodesPerRack is the number of nodes in a rack / Dragonfly group
	// (32 on Frontier: "a single rack contains up to 256 GPUs").
	NodesPerRack int
	// NodeNICBandwidth is the total injection bandwidth of one node into
	// the inter-node fabric, in bytes/s (4 x 25 GB/s on Frontier). All
	// GPUs on a node share it.
	NodeNICBandwidth float64
	// Links maps each link class to its α–β parameters.
	Links map[LinkClass]LinkSpec
	// Device is the compute profile of each rank's GPU.
	Device DeviceProfile
}

const gb = 1e9

// Frontier returns the Frontier machine model used throughout the paper's
// evaluation (§5.1): 8 GCDs per node, 200 GB/s GCD pairs, ~75 GB/s other
// intra-node links, 4x25 GB/s Slingshot NICs, 256-GPU racks.
func Frontier() *Machine {
	return &Machine{
		Name:             "frontier",
		GPUsPerNode:      8,
		GPUsPerPair:      2,
		NodesPerRack:     32,
		NodeNICBandwidth: 100 * gb, // 4 NICs x 25 GB/s
		Links: map[LinkClass]LinkSpec{
			LinkLocal:     {Latency: 0, Bandwidth: 1300 * gb},
			LinkGCDPair:   {Latency: 1.5e-6, Bandwidth: 200 * gb},
			LinkIntraNode: {Latency: 2e-6, Bandwidth: 75 * gb},
			LinkInterNode: {Latency: 4e-6, Bandwidth: 25 * gb},
			LinkCrossRack: {Latency: 8e-6, Bandwidth: 25 * gb},
		},
		Device: DeviceProfile{
			Name:         "MI250X-GCD",
			PeakFLOPs:    191.5e12,
			MemBytes:     64e9, // 64 GB (decimal, as marketed)
			HBMBandwidth: 1600 * gb,
		},
	}
}

// DGXA100 returns an 8-GPU DGX A100 40GB node model for the
// cross-platform experiment (Table 5): flat NVSwitch intra-node fabric.
func DGXA100() *Machine {
	return &Machine{
		Name:             "dgx-a100",
		GPUsPerNode:      8,
		GPUsPerPair:      8, // NVSwitch: one flat tier
		NodesPerRack:     1,
		NodeNICBandwidth: 200 * gb, // 8 x 200 Gb/s HDR IB
		Links: map[LinkClass]LinkSpec{
			LinkLocal:     {Latency: 0, Bandwidth: 1400 * gb},
			LinkGCDPair:   {Latency: 1.2e-6, Bandwidth: 300 * gb}, // NVLink3 per-pair
			LinkIntraNode: {Latency: 1.2e-6, Bandwidth: 300 * gb},
			LinkInterNode: {Latency: 4e-6, Bandwidth: 25 * gb},
			LinkCrossRack: {Latency: 8e-6, Bandwidth: 25 * gb},
		},
		Device: DeviceProfile{
			Name:         "A100-40GB",
			PeakFLOPs:    312e12,
			MemBytes:     40e9, // 40 GB (decimal, as marketed)
			HBMBandwidth: 1555 * gb,
		},
	}
}

// NodeOf returns the node index hosting global rank r.
func (m *Machine) NodeOf(r int) int { return r / m.GPUsPerNode }

// LocalRank returns r's index within its node.
func (m *Machine) LocalRank(r int) int { return r % m.GPUsPerNode }

// RackOf returns the rack (Dragonfly group) index hosting rank r.
func (m *Machine) RackOf(r int) int { return m.NodeOf(r) / m.NodesPerRack }

// SameNode reports whether two ranks share a node.
func (m *Machine) SameNode(a, b int) bool { return m.NodeOf(a) == m.NodeOf(b) }

// Classify returns the link class of a transfer from rank a to rank b.
func (m *Machine) Classify(a, b int) LinkClass {
	if a == b {
		return LinkLocal
	}
	if m.NodeOf(a) == m.NodeOf(b) {
		if m.LocalRank(a)/m.GPUsPerPair == m.LocalRank(b)/m.GPUsPerPair {
			return LinkGCDPair
		}
		return LinkIntraNode
	}
	if m.RackOf(a) == m.RackOf(b) {
		return LinkInterNode
	}
	return LinkCrossRack
}

// Link returns the α–β parameters of the given link class.
func (m *Machine) Link(c LinkClass) LinkSpec { return m.Links[c] }

// NumNodes returns the node count needed to host n ranks.
func (m *Machine) NumNodes(n int) int {
	return (n + m.GPUsPerNode - 1) / m.GPUsPerNode
}

// NumRacks returns the rack count needed to host n ranks.
func (m *Machine) NumRacks(n int) int {
	return (m.NumNodes(n) + m.NodesPerRack - 1) / m.NodesPerRack
}

// Validate checks the machine description for internal consistency.
func (m *Machine) Validate() error {
	if m.GPUsPerNode <= 0 || m.GPUsPerPair <= 0 || m.NodesPerRack <= 0 {
		return fmt.Errorf("topology: %s: non-positive layout field", m.Name)
	}
	if m.GPUsPerNode%m.GPUsPerPair != 0 {
		return fmt.Errorf("topology: %s: GPUsPerNode %d not divisible by GPUsPerPair %d",
			m.Name, m.GPUsPerNode, m.GPUsPerPair)
	}
	for _, c := range []LinkClass{LinkLocal, LinkGCDPair, LinkIntraNode, LinkInterNode, LinkCrossRack} {
		spec, ok := m.Links[c]
		if !ok {
			return fmt.Errorf("topology: %s: missing link class %v", m.Name, c)
		}
		if spec.Bandwidth <= 0 || spec.Latency < 0 {
			return fmt.Errorf("topology: %s: invalid spec for %v", m.Name, c)
		}
	}
	if m.Device.PeakFLOPs <= 0 || m.Device.MemBytes <= 0 || m.Device.HBMBandwidth <= 0 {
		return fmt.Errorf("topology: %s: invalid device profile", m.Name)
	}
	return nil
}
