package model

import (
	"math"
	"testing"
)

func TestZooValidates(t *testing.T) {
	for _, s := range append(Zoo(), SmallSR(), SmallLR()) {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestTable3ParamCounts(t *testing.T) {
	// Our two-matrix expert accounting lands within ~10% of the paper's
	// reported totals (Table 3); document the exact ratios here so any
	// drift in the formulas is caught.
	cases := []struct {
		shape Shape
		paper float64 // billions
	}{
		{Small(), 10.1},
		{Medium(), 55.2},
		{Large(), 201.4},
		{Super(), 545.4},
	}
	for _, c := range cases {
		got := float64(c.shape.TotalParams()) / 1e9
		ratio := got / c.paper
		if ratio < 0.9 || ratio > 1.12 {
			t.Errorf("%s: computed %.1fB vs paper %.1fB (ratio %.3f)", c.shape.Name, got, c.paper, ratio)
		}
	}
}

func TestTable3ActivatedParams(t *testing.T) {
	cases := []struct {
		shape Shape
		paper float64 // billions
	}{
		{Small(), 1.3},
		{Medium(), 5.2},
		{Large(), 11.5},
		{Super(), 28.7},
	}
	for _, c := range cases {
		got := float64(c.shape.ActivatedParams()) / 1e9
		ratio := got / c.paper
		if ratio < 0.85 || ratio > 1.35 {
			t.Errorf("%s: activated %.2fB vs paper %.1fB (ratio %.3f)", c.shape.Name, got, c.paper, ratio)
		}
	}
}

func TestActivatedBelowTotal(t *testing.T) {
	for _, s := range Zoo() {
		if s.ActivatedParams() >= s.TotalParams() {
			t.Errorf("%s: activated %d >= total %d", s.Name, s.ActivatedParams(), s.TotalParams())
		}
	}
}

func TestConvSpecSizeEquivalence(t *testing.T) {
	// Table 1's defining property: Mconv and Mspec have identical total
	// and activated parameters.
	conv, spec := ConvSpecPair()
	if conv.ExpertParamsPerLayer() != spec.ExpertParamsPerLayer() {
		t.Fatalf("expert params differ: %d vs %d",
			conv.ExpertParamsPerLayer(), spec.ExpertParamsPerLayer())
	}
	convAct := int64(conv.TopK) * 2 * int64(conv.HModel) * int64(conv.HFFN)
	specAct := int64(spec.TopK) * 2 * int64(spec.HModel) * int64(spec.HFFN)
	if convAct != specAct {
		t.Fatalf("activated expert params differ: %d vs %d", convAct, specAct)
	}
	// Fine-grained factor m=8: 8x experts, 8x routing, HFFN/8.
	if spec.NumExperts != 8*conv.NumExperts || spec.TopK != 8*conv.TopK ||
		conv.HFFN != 8*spec.HFFN {
		t.Fatal("Mspec is not the m=8 refinement of Mconv")
	}
}

func TestFLOPsPerToken(t *testing.T) {
	s := Small()
	want := 6 * float64(s.ActivatedParams())
	if math.Abs(s.FLOPsPerToken()-want) > 1 {
		t.Fatal("FLOPsPerToken must follow the 6N rule")
	}
}

func TestWithLayersAndTopK(t *testing.T) {
	s := Large().WithLayers(8)
	if s.Layers != 8 || s.Name != "large-l8" {
		t.Fatalf("WithLayers: %+v", s)
	}
	k := Large().WithTopK(16)
	if k.TopK != 16 || k.Name != "large-k16" {
		t.Fatalf("WithTopK: %+v", k)
	}
	// Scaling depth scales totals linearly (minus embeddings).
	base := Large()
	p8 := base.WithLayers(8).TotalParams() - base.EmbeddingParams()
	p24 := base.WithLayers(24).TotalParams() - base.EmbeddingParams()
	if p24 != 3*p8 {
		t.Fatalf("layer scaling not linear: %d vs 3*%d", p24, p8)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	s := Small()
	s.TopK = s.NumExperts + 1
	if s.Validate() == nil {
		t.Fatal("topk > experts must fail")
	}
	s2 := Small()
	s2.HModel = 0
	if s2.Validate() == nil {
		t.Fatal("zero hidden must fail")
	}
}
