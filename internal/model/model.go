// Package model defines the transformer/MoE architecture shapes the paper
// evaluates (Table 3's Small/Medium/Large/Super DeepSeek-style configs,
// the Table 5 SR/LR variants, and the Mconv/Mspec size-equivalent pair of
// §3.2) together with parameter and FLOP accounting.
package model

import "fmt"

// Shape describes one MoE transformer architecture.
type Shape struct {
	// Name identifies the configuration (e.g. "small").
	Name string
	// SeqLen is the training sequence length.
	SeqLen int
	// HModel is the model hidden dimension.
	HModel int
	// HFFN is the expert FFN intermediate dimension.
	HFFN int
	// NumExperts is the expert count per MoE layer.
	NumExperts int
	// TopK is the routed experts per token.
	TopK int
	// Layers is the number of transformer layers (all carry MoE FFNs).
	Layers int
	// VocabSize is the tokenizer vocabulary size (not given in Table 3;
	// fixed at 32000 across configs).
	VocabSize int
}

// Table 3 configurations.

// Small returns the 10.1B-parameter DeepSeek-MoE-style config.
func Small() Shape {
	return Shape{Name: "small", SeqLen: 2048, HModel: 2048, HFFN: 1408,
		NumExperts: 64, TopK: 6, Layers: 28, VocabSize: 32000}
}

// Medium returns the 55.2B DeepSeek-v2-style config.
func Medium() Shape {
	return Shape{Name: "medium", SeqLen: 4096, HModel: 5120, HFFN: 1536,
		NumExperts: 128, TopK: 6, Layers: 28, VocabSize: 32000}
}

// Large returns the 201.4B DeepSeek-v3-style config.
func Large() Shape {
	return Shape{Name: "large", SeqLen: 4096, HModel: 7168, HFFN: 2048,
		NumExperts: 256, TopK: 8, Layers: 28, VocabSize: 32000}
}

// Super returns the 545.4B config trained on 1024 GPUs.
func Super() Shape {
	return Shape{Name: "super", SeqLen: 4096, HModel: 7168, HFFN: 2560,
		NumExperts: 256, TopK: 8, Layers: 61, VocabSize: 32000}
}

// SmallSR returns Table 5's sequence-reduced Small variant (s=1024).
func SmallSR() Shape {
	s := Small()
	s.Name = "small-sr"
	s.SeqLen = 1024
	return s
}

// SmallLR returns Table 5's layer-reduced Small variant (14 layers).
func SmallLR() Shape {
	s := Small()
	s.Name = "small-lr"
	s.Layers = 14
	return s
}

// Zoo returns the Table 3 configurations in evaluation order.
func Zoo() []Shape {
	return []Shape{Small(), Medium(), Large(), Super()}
}

// ConvSpecPair returns the size-equivalent conventional (Mconv) and
// expert-specialized (Mspec) models of §3.2 Table 1, built from a
// GPT-3-6.7B-style base (h=4096, h'=16384) with e=16 and fine-grained
// factor m=8 (Fig. 3's configuration).
func ConvSpecPair() (conv, spec Shape) {
	conv = Shape{Name: "m-conv", SeqLen: 2048, HModel: 4096, HFFN: 16384,
		NumExperts: 16, TopK: 1, Layers: 32, VocabSize: 32000}
	spec = Shape{Name: "m-spec", SeqLen: 2048, HModel: 4096, HFFN: 2048,
		NumExperts: 128, TopK: 8, Layers: 32, VocabSize: 32000}
	return conv, spec
}

// Validate checks the shape for consistency.
func (s Shape) Validate() error {
	switch {
	case s.HModel <= 0 || s.HFFN <= 0 || s.Layers <= 0 || s.SeqLen <= 0:
		return fmt.Errorf("model: %s has non-positive dimension", s.Name)
	case s.NumExperts <= 0 || s.TopK <= 0 || s.TopK > s.NumExperts:
		return fmt.Errorf("model: %s has invalid expert config E=%d k=%d", s.Name, s.NumExperts, s.TopK)
	case s.VocabSize <= 0:
		return fmt.Errorf("model: %s has invalid vocab %d", s.Name, s.VocabSize)
	}
	return nil
}

// ExpertParamsPerLayer returns the parameters of one layer's experts: E
// experts, each a two-matrix FFN [H, HFFN] + [HFFN, H] (Table 1's 2h'h
// per expert).
func (s Shape) ExpertParamsPerLayer() int64 {
	return int64(s.NumExperts) * 2 * int64(s.HModel) * int64(s.HFFN)
}

// RouterParamsPerLayer returns the gate projection parameters H x E.
func (s Shape) RouterParamsPerLayer() int64 {
	return int64(s.HModel) * int64(s.NumExperts)
}

// AttentionParamsPerLayer returns the dense attention parameters 4H².
func (s Shape) AttentionParamsPerLayer() int64 {
	return 4 * int64(s.HModel) * int64(s.HModel)
}

// EmbeddingParams returns input+output embedding parameters (untied).
func (s Shape) EmbeddingParams() int64 {
	return 2 * int64(s.VocabSize) * int64(s.HModel)
}

// TotalParams returns the full parameter count.
func (s Shape) TotalParams() int64 {
	perLayer := s.ExpertParamsPerLayer() + s.RouterParamsPerLayer() + s.AttentionParamsPerLayer()
	return int64(s.Layers)*perLayer + s.EmbeddingParams()
}

// ActivatedParams returns the parameters touched per token: attention,
// router, k of E experts, and the embeddings.
func (s Shape) ActivatedParams() int64 {
	expertAct := int64(s.TopK) * 2 * int64(s.HModel) * int64(s.HFFN)
	perLayer := expertAct + s.RouterParamsPerLayer() + s.AttentionParamsPerLayer()
	return int64(s.Layers)*perLayer + s.EmbeddingParams()
}

// FLOPsPerToken returns training FLOPs per token: the standard 6N
// approximation over activated parameters (2N forward, 4N backward).
func (s Shape) FLOPsPerToken() float64 {
	return 6 * float64(s.ActivatedParams())
}

// FineGrainedFactor returns m = k (relative to a k=1 conventional MoE),
// the paper's expert granularity measure.
func (s Shape) FineGrainedFactor() int { return s.TopK }

// WithLayers returns a copy with a different layer count (Appendix E
// depth sweep).
func (s Shape) WithLayers(l int) Shape {
	s.Layers = l
	s.Name = fmt.Sprintf("%s-l%d", s.Name, l)
	return s
}

// WithTopK returns a copy with a different routing fan-out (Appendix E
// top-k sweep).
func (s Shape) WithTopK(k int) Shape {
	s.TopK = k
	s.Name = fmt.Sprintf("%s-k%d", s.Name, k)
	return s
}
