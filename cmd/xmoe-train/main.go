// Command xmoe-train runs the implementation-validation training
// experiment (paper §5.6, Fig. 15): the same MoE language model trained
// under X-MoE's capacity-only token dropping and DeepSpeed-MoE's
// drop-negative-score policy, on identical data, printing both loss
// curves.
package main

import (
	"flag"
	"fmt"

	"xmoe/internal/moe"
	"xmoe/internal/train"
)

func main() {
	iters := flag.Int("iters", 500, "training iterations")
	policy := flag.String("policy", "both", "dropping policy: xmoe, dsmoe, or both")
	seed := flag.Uint64("seed", 1234, "initialisation and data seed")
	capacity := flag.Float64("capacity", 1.1, "expert capacity factor")
	window := flag.Int("smooth", 25, "moving-average window for the printed curve")
	flag.Parse()

	mk := func(p moe.DropPolicy) []float64 {
		cfg := train.DefaultLMConfig(p)
		cfg.Seed = *seed
		cfg.MoE.CapacityFactor = *capacity
		fmt.Printf("training %s for %d iters\n", cfg, *iters)
		return train.Smooth(train.LossCurve(cfg, *iters), *window)
	}

	var xs, ds []float64
	switch *policy {
	case "xmoe":
		xs = mk(moe.DropByCapacityWeight)
	case "dsmoe":
		ds = mk(moe.DropNegativeThenPosition)
	default:
		xs = mk(moe.DropByCapacityWeight)
		ds = mk(moe.DropNegativeThenPosition)
	}

	fmt.Printf("\n%10s  %12s  %12s\n", "iteration", "X-MoE loss", "DS-MoE loss")
	step := *iters / 25
	if step < 1 {
		step = 1
	}
	val := func(c []float64, i int) string {
		if c == nil {
			return "-"
		}
		return fmt.Sprintf("%.4f", c[i])
	}
	for i := 0; i < *iters; i += step {
		fmt.Printf("%10d  %12s  %12s\n", i, val(xs, i), val(ds, i))
	}
	last := *iters - 1
	fmt.Printf("%10s  %12s  %12s\n", "final", val(xs, last), val(ds, last))
	if xs != nil && ds != nil {
		fmt.Printf("\nfinal gap (DS-MoE - X-MoE): %+.4f — the paper attributes X-MoE's slightly\n", ds[last]-xs[last])
		fmt.Println("lower loss to retaining more tokens per batch (capacity-only dropping)")
	}
}
