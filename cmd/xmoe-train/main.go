// Command xmoe-train runs the implementation-validation training
// experiment (paper §5.6, Fig. 15): the same MoE language model trained
// under X-MoE's capacity-only token dropping and DeepSpeed-MoE's
// drop-negative-score policy, on identical data, printing both loss
// curves.
//
// With -dist it instead runs the simulated distributed expert-parallel
// trainer: full fwd+bwd+SGD steps on a virtual cluster, blocking vs
// chunked comm/compute overlap (-overlap), printing per-step simulated
// wall-clock, the per-stage breakdown, and the loss trajectories (which
// must match bit for bit between the two modes).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"xmoe/internal/bench"
	"xmoe/internal/fault"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/topology"
	"xmoe/internal/trace"
	"xmoe/internal/train"
)

// runDistFT executes the fault-tolerant distributed run: train under a
// deterministic fault plan (explicit -faults spec and/or Poisson crashes
// drawn for -mtbf), checkpointing every -ckpt-every steps, recovering
// from crashes by rollback + elastic shrink, and reporting goodput.
func runDistFT(transport string, world, tokens, overlap, iters int, seed uint64,
	faults string, mtbf float64, ckptEvery int, asyncCkpt bool, spares int, mitigate float64,
	zeroStage int, bucketMB int64, momentum float64) {

	sh := model.Small()
	cfg := train.DistConfig{
		MoE: moe.Config{
			NumExperts: sh.NumExperts, TopK: sh.TopK,
			HModel: 96, HFFN: 48,
			CapacityFactor: 1.25, BytesPerElem: 2,
		},
		World: world, Tokens: tokens, LR: 1e-2, Seed: seed,
		Transport: transport,
		Opts:      moe.PipelineOpts{OverlapChunks: overlap},
		ZeROStage: zeroStage, BucketBytes: bucketMB << 20, Momentum: momentum,
		Mitigation: mitigate,
	}
	if err := cfg.Check(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan, err := fault.ParsePlan(faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if mtbf > 0 {
		// Crash arrivals over a horizon of ~20 MTBFs; arrivals past the
		// run's end simply never fire.
		poisson := fault.PlanCrashes(seed, world, 20*mtbf, mtbf)
		plan.Events = append(plan.Events, poisson.Events...)
		fmt.Printf("drew %d Poisson crash arrivals (MTBF %gs)\n", len(poisson.Events), mtbf)
	}
	tr, err := train.NewDistTrainer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan.Spares += spares
	rec := &trace.Recorder{}
	mode := "blocking"
	if asyncCkpt {
		mode = "async"
	}
	fmt.Printf("fault-tolerant %s trainer: EP=%d, %d tokens/rank, %d steps, %s ckpt every %d\n",
		transport, world, tokens, iters, mode, ckptEvery)
	if plan.Spares > 0 {
		fmt.Printf("hot-spare pool: %d\n", plan.Spares)
	}
	if mitigate > 0 {
		fmt.Printf("straggler mitigation: capacity rebalance bound %g\n", mitigate)
	}
	if plan.String() != "" {
		fmt.Printf("fault plan: %s\n", plan)
	}
	st, err := tr.RunFaultTolerant(train.FTOptions{
		Steps: iters, CkptEvery: ckptEvery, AsyncCkpt: asyncCkpt, Plan: plan, Rec: rec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\ncompleted %d useful steps: %d recoveries, %d replayed, %d spares promoted, world %d -> %d\n",
		st.Steps, st.Recoveries, st.ReplayedSteps, st.SparesUsed, world, st.FinalWorld)
	fmt.Printf("final loss %.6f\n", st.FinalLoss)
	fmt.Printf("goodput %.3f: useful %.3fms + ckpt %.3fms + lost %.3fms = wall %.3fms\n",
		st.Goodput, st.UsefulTime*1e3, st.CkptTime*1e3, st.LostTime*1e3, st.WallClock*1e3)
	if marks := rec.Marks(); len(marks) > 0 {
		fmt.Println("\nevent timeline:")
		for _, e := range marks {
			fmt.Printf("  %10.3fms  %s\n", e.Start*1e3, e.Name)
		}
	}
}

// runDist executes the distributed-trainer comparison. engine selects the
// cost engine for the timing-at-scale replay (bench.NewEngine vocabulary);
// the numeric loss runs always use the analytic fast path, which the
// event engine is cross-validated against.
func runDist(transport string, world, tokens, overlap, iters int, seed uint64, engine string,
	zeroStage int, bucketMB int64, momentum float64) {

	sh := model.Small()
	mk := func(chunks int) train.DistConfig {
		return train.DistConfig{
			MoE: moe.Config{
				NumExperts: sh.NumExperts, TopK: sh.TopK,
				HModel: 96, HFFN: 48, // numeric-tractable stand-ins for the Small dims
				CapacityFactor: 1.25, BytesPerElem: 2,
			},
			World: world, Tokens: tokens, LR: 1e-2, Seed: seed,
			Transport: transport,
			Opts:      moe.PipelineOpts{OverlapChunks: chunks},
			ZeROStage: zeroStage, BucketBytes: bucketMB << 20, Momentum: momentum,
		}
	}
	// Validate the flag-derived options before entering any SPMD body so
	// the user sees the descriptive error, not a rank panic.
	cfg := mk(overlap)
	if err := cfg.Check(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	run := func(chunks int) (losses []float64, wall float64, last train.DistStepStats) {
		tr, err := train.NewDistTrainer(mk(chunks))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for i := 0; i < iters; i++ {
			stats, err := tr.Step()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			losses = append(losses, stats.Loss)
			wall += stats.WallClock
			last = stats
		}
		return losses, wall, last
	}

	fmt.Printf("distributed %s trainer: EP=%d, %d tokens/rank, %d steps\n", transport, world, tokens, iters)
	blockLoss, blockWall, _ := run(1)
	chunkLoss, chunkWall, last := run(overlap)

	identical := len(blockLoss) == len(chunkLoss)
	for i := 0; identical && i < len(blockLoss); i++ {
		identical = blockLoss[i] == chunkLoss[i]
	}
	fmt.Printf("\n%6s  %14s  %14s\n", "step", "blocking loss", fmt.Sprintf("C=%d loss", overlap))
	for i := range blockLoss {
		fmt.Printf("%6d  %14.6f  %14.6f\n", i, blockLoss[i], chunkLoss[i])
	}
	fmt.Printf("\nloss trajectories bit-identical: %v\n", identical)
	fmt.Printf("simulated step time: blocking %.3fms, C=%d %.3fms (%.2fx)\n",
		blockWall/float64(iters)*1e3, overlap, chunkWall/float64(iters)*1e3, blockWall/chunkWall)
	fmt.Printf("in-flight comm per overlapped step: %.3fms; breakdown-vs-clock imbalance: %.3gs\n",
		last.CommInFlight*1e3, last.MaxImbalance)
	names := make([]string, 0, len(last.Breakdown))
	for n := range last.Breakdown {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("\nper-stage charged breakdown of the last overlapped step (sums to wall-clock):")
	for _, n := range names {
		fmt.Printf("  %-18s %9.4fms\n", n, last.Breakdown[n]*1e3)
	}

	// The numeric run above proves determinism at laptop-scale dims,
	// where there is little communication to hide and chunking's launch
	// overheads dominate. The timing story lives at the paper's scale:
	// replay the step symbolically on the communication-heavy regime,
	// through the same bench.StepClock harness the abl-overlap-bwd
	// ablation measures.
	const symWorld, symTokens = 16, 1024
	symCfg := moe.Config{
		NumExperts: 64, TopK: 6, HModel: 4096, HFFN: 2048,
		CapacityFactor: 1.25, BytesPerElem: 2,
	}
	engName := engine
	if engName == "" {
		engName = "analytic"
	}
	fmt.Printf("\ntiming at scale (symbolic fwd+bwd step, H=%d, EP=%d, engine %s):\n",
		symCfg.HModel, symWorld, engName)
	symBlock := bench.StepClock(topology.Frontier(), symCfg, symWorld, symTokens, transport, 1, 1, seed, engine)
	symChunk := bench.StepClock(topology.Frontier(), symCfg, symWorld, symTokens, transport, overlap, overlap, seed, engine)
	fmt.Printf("  blocking %.3fms, C=%d %.3fms (%.2fx)\n",
		symBlock*1e3, overlap, symChunk*1e3, symBlock/symChunk)
}

func main() {
	iters := flag.Int("iters", 500, "training iterations")
	policy := flag.String("policy", "both", "dropping policy: xmoe, dsmoe, or both")
	seed := flag.Uint64("seed", 1234, "initialisation and data seed")
	capacity := flag.Float64("capacity", 1.1, "expert capacity factor")
	window := flag.Int("smooth", 25, "moving-average window for the printed curve")
	dist := flag.Bool("dist", false, "run the simulated distributed EP trainer (blocking vs overlapped)")
	transport := flag.String("transport", "pft", "distributed transport: pft, padded, or rbd")
	world := flag.Int("ep", 8, "distributed mode: expert-parallel group size")
	tokens := flag.Int("tokens", 128, "distributed mode: tokens per rank per step")
	overlap := flag.Int("overlap", 4, "distributed mode: comm/compute overlap chunk count")
	distIters := flag.Int("dist-iters", 8, "distributed mode: training steps")
	faults := flag.String("faults", "", "distributed mode: deterministic fault plan, e.g. 'crash:r1@s4,straggler:r0@s0:x2' (implies fault-tolerant run)")
	mtbf := flag.Float64("mtbf", 0, "distributed mode: draw Poisson crash arrivals with this mean-time-between-failures in simulated seconds (implies fault-tolerant run)")
	ckptEvery := flag.Int("ckpt-every", 5, "fault-tolerant mode: checkpoint every N steps")
	asyncCkpt := flag.Bool("async-ckpt", false, "fault-tolerant mode: stream checkpoint writes behind training steps, charging only the uncovered remainder (crash mid-write falls back to the last completed snapshot)")
	spares := flag.Int("spares", 0, "fault-tolerant mode: hot-spare pool size; recovery promotes spares into dead slots, regrowing toward the original world (adds to any spares:<n> in -faults)")
	mitigate := flag.Float64("mitigate", 0, "fault-tolerant mode: straggler-aware capacity rebalance bound in (0,1]; 0 disables (pft and rbd transports only)")
	engine := flag.String("engine", "analytic", "distributed mode: cost engine for the timing-at-scale replay ("+bench.EngineSpecs+")")
	zeroStage := flag.Int("zero", 0, "distributed mode: ZeRO stage (0 = replicated, 1 = sharded optimizer state, 2 = + sharded gradients)")
	bucketMB := flag.Int64("bucket-mb", 0, "distributed mode: gradient-sync bucket size in MiB (0 = one bucket per stream)")
	momentum := flag.Float64("momentum", 0, "distributed mode: SGD momentum (its state shards under -zero >= 1)")
	flag.Parse()

	if *dist {
		if *faults != "" || *mtbf > 0 || *spares > 0 {
			runDistFT(*transport, *world, *tokens, *overlap, *distIters, *seed,
				*faults, *mtbf, *ckptEvery, *asyncCkpt, *spares, *mitigate,
				*zeroStage, *bucketMB, *momentum)
			return
		}
		if _, err := bench.NewEngine(topology.Frontier(), *world, *engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		runDist(*transport, *world, *tokens, *overlap, *distIters, *seed, *engine,
			*zeroStage, *bucketMB, *momentum)
		return
	}

	mk := func(p moe.DropPolicy) []float64 {
		cfg := train.DefaultLMConfig(p)
		cfg.Seed = *seed
		cfg.MoE.CapacityFactor = *capacity
		fmt.Printf("training %s for %d iters\n", cfg, *iters)
		return train.Smooth(train.LossCurve(cfg, *iters), *window)
	}

	var xs, ds []float64
	switch *policy {
	case "xmoe":
		xs = mk(moe.DropByCapacityWeight)
	case "dsmoe":
		ds = mk(moe.DropNegativeThenPosition)
	default:
		xs = mk(moe.DropByCapacityWeight)
		ds = mk(moe.DropNegativeThenPosition)
	}

	fmt.Printf("\n%10s  %12s  %12s\n", "iteration", "X-MoE loss", "DS-MoE loss")
	step := *iters / 25
	if step < 1 {
		step = 1
	}
	val := func(c []float64, i int) string {
		if c == nil {
			return "-"
		}
		return fmt.Sprintf("%.4f", c[i])
	}
	for i := 0; i < *iters; i += step {
		fmt.Printf("%10d  %12s  %12s\n", i, val(xs, i), val(ds, i))
	}
	last := *iters - 1
	fmt.Printf("%10s  %12s  %12s\n", "final", val(xs, last), val(ds, last))
	if xs != nil && ds != nil {
		fmt.Printf("\nfinal gap (DS-MoE - X-MoE): %+.4f — the paper attributes X-MoE's slightly\n", ds[last]-xs[last])
		fmt.Println("lower loss to retaining more tokens per batch (capacity-only dropping)")
	}
}
