// Command xmoe-topo explores the simulated HPC topologies and
// characterises collective performance on them: link classes and
// bandwidths, rack boundaries, and the Appendix-D all-to-all latency
// characterisation across scales.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmoe/internal/bench"
	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

func main() {
	machine := flag.String("machine", "frontier", "machine profile: frontier or dgx-a100")
	gpus := flag.Int("gpus", 64, "GPU count for the collective cost table")
	bytes := flag.Int64("bytes", 32<<20, "per-rank payload for the collective cost table")
	characterise := flag.Bool("characterize", false, "run the Appendix-D all-to-all characterisation (Figs. 18/19)")
	graph := flag.String("graph", "", "print the event-engine topology graph instead: flat, rail, or noc")
	seed := flag.Uint64("seed", 42, "congestion sampling seed")
	flag.Parse()

	var m *topology.Machine
	switch *machine {
	case "frontier":
		m = topology.Frontier()
	case "dgx-a100", "dgx":
		m = topology.DGXA100()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	if *graph != "" {
		printGraph(m, *graph, *gpus)
		return
	}

	fmt.Printf("machine %s: %d GPUs/node (%d per fast pair), %d nodes/rack\n",
		m.Name, m.GPUsPerNode, m.GPUsPerPair, m.NodesPerRack)
	fmt.Printf("device %s: %.1f TFLOPs peak, %.0f GB HBM, %.0f GB/s HBM bandwidth\n",
		m.Device.Name, m.Device.PeakFLOPs/1e12, float64(m.Device.MemBytes)/1e9, m.Device.HBMBandwidth/1e9)
	fmt.Println("\nlink classes:")
	for _, c := range []topology.LinkClass{topology.LinkGCDPair, topology.LinkIntraNode,
		topology.LinkInterNode, topology.LinkCrossRack} {
		spec := m.Link(c)
		fmt.Printf("  %-12s %6.0f GB/s  α=%.1f µs\n", c, spec.Bandwidth/1e9, spec.Latency*1e6)
	}

	net := netsim.New(m, *seed)
	net.DisableCongestion = true
	ranks := make([]int, *gpus)
	for i := range ranks {
		ranks[i] = i
	}
	fmt.Printf("\ncollective costs over %d GPUs, %d MiB per rank:\n", *gpus, *bytes>>20)
	a2a := net.AlltoAll(ranks, *bytes/int64(*gpus))
	fmt.Printf("  all-to-all:     %8.2f ms  (inter-node bytes: %d MiB)\n",
		a2a.Seconds*1e3, a2a.InterNodeBytes()>>20)
	ar := net.AllReduce(ranks, *bytes)
	fmt.Printf("  all-reduce:     %8.2f ms\n", ar.Seconds*1e3)
	per := make([]int64, *gpus)
	for i := range per {
		per[i] = *bytes / int64(*gpus)
	}
	ag := net.AllGather(ranks, per)
	fmt.Printf("  all-gather:     %8.2f ms\n", ag.Seconds*1e3)
	fmt.Printf("  barrier:        %8.3f ms\n", net.Barrier(ranks).Seconds*1e3)

	if *characterise {
		bench.Figure18AlltoAllScaling(os.Stdout, bench.Options{Seed: *seed})
	}
}

// printGraph renders an event-engine topology graph: every link with its
// sharing discipline, plus sample routes spanning each hierarchy level.
func printGraph(m *topology.Machine, kind string, gpus int) {
	var g *topology.Graph
	switch kind {
	case "flat":
		if gpus > m.GPUsPerNode {
			// FlatGraph models a single node; build the synthetic
			// all-uniform machine netsim's flat tests use instead.
			g = topology.FlatGraph(topology.Flat(gpus), gpus)
		} else {
			g = topology.FlatGraph(m, gpus)
		}
	case "rail":
		g = topology.RailGraph(m, gpus, 0)
	case "noc":
		g = topology.NoCGraph(m, gpus, 0)
	default:
		fmt.Fprintf(os.Stderr, "unknown graph %q (want flat, rail, or noc)\n", kind)
		os.Exit(2)
	}
	if err := g.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("graph %s: %d ranks on %s, %d links (engine \"event:%s\")\n",
		g.Name, g.NumRanks, g.M.Name, len(g.Links), g.Name)
	fmt.Printf("\n%-4s %-12s %-12s %-9s %10s %9s\n", "id", "name", "class", "sharing", "GB/s", "α (µs)")
	for _, l := range g.Links {
		sharing := "port"
		if l.Shared {
			sharing = "shared"
		}
		bw := "class"
		if !l.ClassBound {
			bw = fmt.Sprintf("%.0f", l.Bandwidth/1e9)
		}
		lat := "class"
		if !l.ClassBound {
			lat = fmt.Sprintf("%.1f", l.Latency*1e6)
		}
		fmt.Printf("%-4d %-12s %-12s %-9s %10s %9s\n", l.ID, l.Name, l.Class, sharing, bw, lat)
	}

	fmt.Println("\nsample routes:")
	samples := [][2]int{{0, 1}}
	if n := g.NumRanks; n > m.GPUsPerPair {
		samples = append(samples, [2]int{0, m.GPUsPerPair}) // cross-pair
	}
	if n := g.NumRanks; n > m.GPUsPerNode {
		samples = append(samples, [2]int{0, n - 1}) // inter-node (last rank)
	}
	for _, s := range samples {
		route := g.Route(s[0], s[1], nil)
		names := make([]string, len(route))
		for i, id := range route {
			names[i] = g.Link(id).Name
		}
		fmt.Printf("  %3d -> %-3d  %v\n", s[0], s[1], names)
	}
}
