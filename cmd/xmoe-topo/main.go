// Command xmoe-topo explores the simulated HPC topologies and
// characterises collective performance on them: link classes and
// bandwidths, rack boundaries, and the Appendix-D all-to-all latency
// characterisation across scales.
package main

import (
	"flag"
	"fmt"
	"os"

	"xmoe/internal/bench"
	"xmoe/internal/netsim"
	"xmoe/internal/topology"
)

func main() {
	machine := flag.String("machine", "frontier", "machine profile: frontier or dgx-a100")
	gpus := flag.Int("gpus", 64, "GPU count for the collective cost table")
	bytes := flag.Int64("bytes", 32<<20, "per-rank payload for the collective cost table")
	characterise := flag.Bool("characterize", false, "run the Appendix-D all-to-all characterisation (Figs. 18/19)")
	seed := flag.Uint64("seed", 42, "congestion sampling seed")
	flag.Parse()

	var m *topology.Machine
	switch *machine {
	case "frontier":
		m = topology.Frontier()
	case "dgx-a100", "dgx":
		m = topology.DGXA100()
	default:
		fmt.Fprintf(os.Stderr, "unknown machine %q\n", *machine)
		os.Exit(2)
	}

	fmt.Printf("machine %s: %d GPUs/node (%d per fast pair), %d nodes/rack\n",
		m.Name, m.GPUsPerNode, m.GPUsPerPair, m.NodesPerRack)
	fmt.Printf("device %s: %.1f TFLOPs peak, %.0f GB HBM, %.0f GB/s HBM bandwidth\n",
		m.Device.Name, m.Device.PeakFLOPs/1e12, float64(m.Device.MemBytes)/1e9, m.Device.HBMBandwidth/1e9)
	fmt.Println("\nlink classes:")
	for _, c := range []topology.LinkClass{topology.LinkGCDPair, topology.LinkIntraNode,
		topology.LinkInterNode, topology.LinkCrossRack} {
		spec := m.Link(c)
		fmt.Printf("  %-12s %6.0f GB/s  α=%.1f µs\n", c, spec.Bandwidth/1e9, spec.Latency*1e6)
	}

	net := netsim.New(m, *seed)
	net.DisableCongestion = true
	ranks := make([]int, *gpus)
	for i := range ranks {
		ranks[i] = i
	}
	fmt.Printf("\ncollective costs over %d GPUs, %d MiB per rank:\n", *gpus, *bytes>>20)
	a2a := net.AlltoAll(ranks, *bytes/int64(*gpus))
	fmt.Printf("  all-to-all:     %8.2f ms  (inter-node bytes: %d MiB)\n",
		a2a.Seconds*1e3, a2a.InterNodeBytes()>>20)
	ar := net.AllReduce(ranks, *bytes)
	fmt.Printf("  all-reduce:     %8.2f ms\n", ar.Seconds*1e3)
	per := make([]int64, *gpus)
	for i := range per {
		per[i] = *bytes / int64(*gpus)
	}
	ag := net.AllGather(ranks, per)
	fmt.Printf("  all-gather:     %8.2f ms\n", ag.Seconds*1e3)
	fmt.Printf("  barrier:        %8.3f ms\n", net.Barrier(ranks).Seconds*1e3)

	if *characterise {
		bench.Figure18AlltoAllScaling(os.Stdout, bench.Options{Seed: *seed})
	}
}
