// Command xmoe-bench regenerates the paper's evaluation artifacts: every
// table and figure of §5 and the appendices, printed as paper-vs-measured
// tables. Run with -list to see experiment names.
//
// Usage:
//
//	xmoe-bench [-experiment all] [-quick] [-seed 42] [-json]
//
// With -json, each experiment is additionally run under the Go benchmark
// harness and a machine-readable record (host ns/op, allocs/op, bytes/op,
// plus the experiment's simulated headline metrics such as TFLOPs/GPU) is
// appended to BENCH_results.json, seeding the repository's performance
// trajectory.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"xmoe/internal/bench"
	"xmoe/internal/moe"
	"xmoe/internal/topology"
)

var experiments = map[string]func(w io.Writer, opts bench.Options){
	"table1": func(w io.Writer, o bench.Options) { bench.Table1SizeEquivalence(w) },
	"fig3":   func(w io.Writer, o bench.Options) { bench.Figure3MemoryDistribution(w) },
	"fig4":   func(w io.Writer, o bench.Options) { bench.Figure4Redundancy(w, o) },
	"fig9":   func(w io.Writer, o bench.Options) { bench.Figure9MainResults(w, o) },
	"fig10a": func(w io.Writer, o bench.Options) { bench.Figure10aWeakScaling(w, o) },
	"fig10b": func(w io.Writer, o bench.Options) { bench.Figure10bStrongScaling(w, o) },
	"fig11":  func(w io.Writer, o bench.Options) { bench.Figure11LayerBreakdown(w, o) },
	"fig12":  func(w io.Writer, o bench.Options) { bench.Figure12RBDBreakdown(w, o) },
	"table4": func(w io.Writer, o bench.Options) { bench.Table4ActivationMemory(w) },
	"fig13":  func(w io.Writer, o bench.Options) { bench.Figure13SSMBMemory(w) },
	"fig14":  func(w io.Writer, o bench.Options) { bench.Figure14SSMBvsCkpt(w, o) },
	"table5": func(w io.Writer, o bench.Options) { bench.Table5CrossPlatform(w, o) },
	"fig15":  func(w io.Writer, o bench.Options) { bench.Figure15LossValidation(w, o) },
	"fig17":  func(w io.Writer, o bench.Options) { bench.Figure17AdvantageRegions(w) },
	"fig18":  func(w io.Writer, o bench.Options) { bench.Figure18AlltoAllScaling(w, o) },
	"fig20":  func(w io.Writer, o bench.Options) { bench.Figure20DepthTopK(w, o) },
	"appc1":  func(w io.Writer, o bench.Options) { bench.AppendixC1Placement(w) },
	// Ablations beyond the paper's figures (design choices of §4).
	"abl-pilot":        func(w io.Writer, o bench.Options) { bench.AblationPilotSelection(w, o) },
	"abl-capacity":     func(w io.Writer, o bench.Options) { bench.AblationCapacityFactor(w, o) },
	"abl-rbd-ep":       func(w io.Writer, o bench.Options) { bench.AblationRBDByEPSize(w, o) },
	"abl-overlap":      func(w io.Writer, o bench.Options) { bench.AblationOverlap(w, o) },
	"abl-overlap-bwd":  func(w io.Writer, o bench.Options) { bench.AblationOverlapBackward(w, o) },
	"abl-faults":       func(w io.Writer, o bench.Options) { bench.AblationFaults(w, o) },
	"abl-engine-delta": func(w io.Writer, o bench.Options) { bench.AblationEngineDelta(w, o) },
	"abl-zero":         func(w io.Writer, o bench.Options) { bench.AblationZeRO(w, o) },
}

// order fixes the presentation sequence for -experiment all.
var order = []string{
	"table1", "fig3", "fig4", "fig9", "fig10a", "fig10b", "fig11", "fig12",
	"table4", "fig13", "fig14", "table5", "fig15", "fig17", "fig18", "fig20", "appc1",
	"abl-pilot", "abl-capacity", "abl-rbd-ep", "abl-overlap", "abl-overlap-bwd",
	"abl-faults", "abl-engine-delta", "abl-zero",
}

const jsonPath = "BENCH_results.json"

func main() {
	exp := flag.String("experiment", "all", "experiment to run (or 'all'); see -list")
	quick := flag.Bool("quick", false, "reduced iteration counts and sweep ranges")
	seed := flag.Uint64("seed", 42, "seed for routing and congestion sampling")
	list := flag.Bool("list", false, "list experiment names and exit")
	jsonOut := flag.Bool("json", false, "benchmark each experiment and append machine-readable results to "+jsonPath)
	chunksFlag := flag.String("chunks", "", "comma-separated chunk counts for the overlap ablations (default 1,2,4,8; the C=1 blocking baseline is always included)")
	engine := flag.String("engine", "analytic", "cost engine for engine-aware experiments ("+bench.EngineSpecs+")")
	flag.Parse()

	// Validate -engine up front (experiments panic on a bad spec).
	if _, err := bench.NewEngine(topology.Frontier(), 8, *engine); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	engineName := *engine
	if engineName == "" {
		engineName = "analytic"
	}

	// Validate the flag-derived overlap options up front so the user sees
	// the descriptive PipelineOpts.Check error, not a rank panic.
	var chunks []int
	if *chunksFlag != "" {
		for _, tok := range strings.Split(*chunksFlag, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fmt.Fprintf(os.Stderr, "invalid -chunks entry %q: %v\n", tok, err)
				os.Exit(2)
			}
			if err := (moe.PipelineOpts{OverlapChunks: c}).Check(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			chunks = append(chunks, c)
		}
	}

	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	opts := bench.Options{Seed: *seed, Quick: *quick, Chunks: chunks, Engine: *engine}
	var records []bench.Record
	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fn(os.Stdout, opts)
		fmt.Printf("  [%s completed in %.1fs]\n", name, time.Since(start).Seconds())
		if *jsonOut {
			bench.DrainMetrics() // keep only the benchmarked run's metrics
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					fn(io.Discard, opts)
				}
			})
			records = append(records, bench.Record{
				Experiment:  name,
				NsPerOp:     res.NsPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				Simulated:   bench.DrainMetrics(),
				Engine:      engineName,
				Quick:       *quick,
				Seed:        *seed,
				Timestamp:   start.UTC().Format(time.RFC3339),
			})
		}
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		for _, name := range strings.Split(*exp, ",") {
			run(strings.TrimSpace(name))
		}
	}
	if *jsonOut {
		if err := bench.AppendResults(jsonPath, records); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("  [wrote %d records to %s]\n", len(records), jsonPath)
	}
}
