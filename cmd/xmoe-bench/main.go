// Command xmoe-bench regenerates the paper's evaluation artifacts: every
// table and figure of §5 and the appendices, printed as paper-vs-measured
// tables. Run with -list to see experiment names.
//
// Usage:
//
//	xmoe-bench [-experiment all] [-quick] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"xmoe/internal/bench"
)

var experiments = map[string]func(opts bench.Options){
	"table1": func(o bench.Options) { bench.Table1SizeEquivalence(os.Stdout) },
	"fig3":   func(o bench.Options) { bench.Figure3MemoryDistribution(os.Stdout) },
	"fig4":   func(o bench.Options) { bench.Figure4Redundancy(os.Stdout, o) },
	"fig9":   func(o bench.Options) { bench.Figure9MainResults(os.Stdout, o) },
	"fig10a": func(o bench.Options) { bench.Figure10aWeakScaling(os.Stdout, o) },
	"fig10b": func(o bench.Options) { bench.Figure10bStrongScaling(os.Stdout, o) },
	"fig11":  func(o bench.Options) { bench.Figure11LayerBreakdown(os.Stdout, o) },
	"fig12":  func(o bench.Options) { bench.Figure12RBDBreakdown(os.Stdout, o) },
	"table4": func(o bench.Options) { bench.Table4ActivationMemory(os.Stdout) },
	"fig13":  func(o bench.Options) { bench.Figure13SSMBMemory(os.Stdout) },
	"fig14":  func(o bench.Options) { bench.Figure14SSMBvsCkpt(os.Stdout, o) },
	"table5": func(o bench.Options) { bench.Table5CrossPlatform(os.Stdout, o) },
	"fig15":  func(o bench.Options) { bench.Figure15LossValidation(os.Stdout, o) },
	"fig17":  func(o bench.Options) { bench.Figure17AdvantageRegions(os.Stdout) },
	"fig18":  func(o bench.Options) { bench.Figure18AlltoAllScaling(os.Stdout, o) },
	"fig20":  func(o bench.Options) { bench.Figure20DepthTopK(os.Stdout, o) },
	"appc1":  func(o bench.Options) { bench.AppendixC1Placement(os.Stdout) },
	// Ablations beyond the paper's figures (design choices of §4).
	"abl-pilot":    func(o bench.Options) { bench.AblationPilotSelection(os.Stdout, o) },
	"abl-capacity": func(o bench.Options) { bench.AblationCapacityFactor(os.Stdout, o) },
	"abl-rbd-ep":   func(o bench.Options) { bench.AblationRBDByEPSize(os.Stdout, o) },
}

// order fixes the presentation sequence for -experiment all.
var order = []string{
	"table1", "fig3", "fig4", "fig9", "fig10a", "fig10b", "fig11", "fig12",
	"table4", "fig13", "fig14", "table5", "fig15", "fig17", "fig18", "fig20", "appc1",
	"abl-pilot", "abl-capacity", "abl-rbd-ep",
}

func main() {
	exp := flag.String("experiment", "all", "experiment to run (or 'all'); see -list")
	quick := flag.Bool("quick", false, "reduced iteration counts and sweep ranges")
	seed := flag.Uint64("seed", 42, "seed for routing and congestion sampling")
	list := flag.Bool("list", false, "list experiment names and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	opts := bench.Options{Seed: *seed, Quick: *quick}
	run := func(name string) {
		fn, ok := experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		fn(opts)
		fmt.Printf("  [%s completed in %.1fs]\n", name, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		run(strings.TrimSpace(name))
	}
}
