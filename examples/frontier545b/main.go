// Frontier 545B: reproduce the paper's headline claim — the 545B-parameter
// Super model trains on 1024 simulated MI250X GCDs under X-MoE while every
// baseline runs out of memory (paper §5.2, Fig. 9 right).
//
//	go run ./examples/frontier545b
package main

import (
	"fmt"

	"xmoe/internal/baselines"
	"xmoe/internal/memmodel"
	"xmoe/internal/model"
	"xmoe/internal/moe"
	"xmoe/internal/parallel"
	"xmoe/internal/topology"
)

func main() {
	m := topology.Frontier()
	shape := model.Super()
	fmt.Printf("model %q: %.1fB total params, %.1fB activated, %d experts x %d layers, top-%d\n",
		shape.Name, float64(shape.TotalParams())/1e9, float64(shape.ActivatedParams())/1e9,
		shape.NumExperts, shape.Layers, shape.TopK)
	fmt.Println("platform: Frontier, 1024 MI250X GCDs (128 nodes, 4 racks)")

	fmt.Println("\ntrainability across systems (global batch 1024):")
	for _, sys := range baselines.Systems() {
		cfg := baselines.For(sys, m)
		sw := baselines.Sweep(cfg, shape, m, 1024, 1024, 42, true)
		if sw.OOM {
			fmt.Printf("  %-14s OOM — no swept configuration fits 64 GB per GCD\n", cfg.Name)
			continue
		}
		fmt.Printf("  %-14s %.1f TFLOPs/GPU (%.2f aggregate PFLOPs), iter %.1fs,\n",
			cfg.Name, sw.Best.TFLOPsPerGPU, sw.Best.AggPFLOPs, sw.Best.IterSeconds)
		fmt.Printf("  %-14s config: TP=%d EP=%d ZeRO-%d SSMB=%v micro-batch=%d, peak %.1f GiB/GPU\n",
			"", sw.Plan.TP, sw.Plan.EP, sw.Plan.ZeROStage, sw.Plan.SSMB, sw.MicroBatch, sw.Best.PeakMemGB)
	}

	// Show why: per-GPU memory of the best X-MoE plan with each
	// technique toggled off.
	fmt.Println("\nablation: X-MoE memory techniques on the Super model (peak GiB/GPU):")
	cfg := baselines.For(baselines.XMoE, m)
	base := parallel.Plan{World: 1024, TP: 4, EP: 256, Placement: cfg.Placement, SSMB: true, ZeROStage: 1}
	show := func(label string, plan parallel.Plan, c baselines.Config) {
		r := baselines.SimulateStep(c, baselines.RunSpec{
			Shape: shape, Machine: m, World: 1024, Plan: plan,
			MicroBatch: 1, GlobalBatch: 1024, Seed: 42,
		})
		verdict := "fits"
		if r.OOM {
			verdict = "OOM"
		}
		fmt.Printf("  %-28s %6.1f GiB  (%s)\n", label, r.PeakMemGB, verdict)
	}
	show("full X-MoE (PFT+SSMB)", base, cfg)
	noSSMB := base
	noSSMB.SSMB = false
	show("without SSMB", noSSMB, cfg)
	padded := cfg
	padded.Pipeline = memmodel.PipelinePadded
	padded.Kernels = moe.KernelsFallback
	show("padded pipeline (DS-style)", base, padded)
	fmt.Println("\npaper: X-MoE sustains 10.44 aggregate PFLOPs on the 545B model at 1024 GCDs")
}
