// Loss validation: train the same MoE language model under the two
// token-dropping policies the paper compares in §5.6 (Fig. 15) and show
// the loss curves tracking closely, with X-MoE's capacity-only policy
// retaining more tokens.
//
//	go run ./examples/lossvalidation
package main

import (
	"fmt"

	"xmoe/internal/moe"
	"xmoe/internal/train"
)

func main() {
	const iters = 300
	run := func(name string, policy moe.DropPolicy) []float64 {
		cfg := train.DefaultLMConfig(policy)
		cfg.MoE.CapacityFactor = 1.1 // tight capacity so the policies diverge
		fmt.Printf("training %s: %s\n", name, cfg)
		return train.Smooth(train.LossCurve(cfg, iters), 25)
	}
	xmoe := run("X-MoE (capacity-only dropping)", moe.DropByCapacityWeight)
	dsmoe := run("DeepSpeed-MoE (drop negative scores)", moe.DropNegativeThenPosition)

	fmt.Printf("\n%10s %12s %12s\n", "iter", "X-MoE", "DS-MoE")
	for i := 0; i < iters; i += iters / 12 {
		fmt.Printf("%10d %12.4f %12.4f\n", i, xmoe[i], dsmoe[i])
	}
	fmt.Printf("%10s %12.4f %12.4f\n", "final", xmoe[iters-1], dsmoe[iters-1])
	fmt.Printf("\nfinal gap (DS-MoE - X-MoE): %+.4f\n", dsmoe[iters-1]-xmoe[iters-1])
	fmt.Println("paper: the curves closely track; X-MoE's is slightly lower because it only")
	fmt.Println("drops tokens on capacity overflow, retaining more tokens per batch")
}
