// RBD demo: quantify node-level token redundancy for a DeepSeek-style
// routing (paper Fig. 4) and show Redundancy-Bypassing Dispatch moving
// the redundant copies off the slow inter-node links (paper Fig. 12).
//
//	go run ./examples/rbd
package main

import (
	"fmt"
	"log"

	"xmoe/internal/moe"
	"xmoe/internal/rbd"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

func main() {
	m := topology.Frontier()

	// Part 1: redundancy analysis (Fig. 4).
	fmt.Println("node-level redundancy of dispatched tokens (256 experts, k=8):")
	fmt.Printf("%8s %10s %10s\n", "EP size", "analytic", "measured")
	for _, ep := range []int{16, 32, 64, 128, 256} {
		nodes := ep / m.GPUsPerNode
		analytic := rbd.ExpectedRedundancyRate(256, 8, nodes)
		rt := moe.SyntheticRouting(tensor.NewRNG(uint64(ep)), 2048, 256, 8, 0)
		measured := rbd.AnalyzeRedundancy(rt, func(e int) int { return e / (256 / nodes) }, -1)
		fmt.Printf("%8d %9.1f%% %9.1f%%\n", ep, analytic*100, measured.Rate()*100)
	}

	// Part 2: dispatch through RBD on 32 simulated GCDs (4 nodes),
	// the paper's Fig. 12 configuration.
	cfg := moe.Config{
		NumExperts:     256,
		TopK:           8,
		HModel:         7168,
		HFFN:           2048,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}
	const sTok = 1024
	cluster := simrt.NewCluster(m, 32, 11)
	cluster.Net.DisableCongestion = true
	g := cluster.WorldGroup()
	d := rbd.NewDispatcher(cluster, g, cfg)

	ranks, err := cluster.RunCollect(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(uint64(r.ID))
		rt := moe.SyntheticRouting(rng, sTok, cfg.NumExperts, cfg.TopK, 0)
		pft := moe.BuildPFT(rt, cfg.NumExperts, cfg.Capacity(sTok), moe.DropByCapacityWeight)
		st, _ := d.Dispatch(r, pft, nil, tensor.NewRNG(99+uint64(r.ID)), rbd.Opts{})
		d.Combine(r, st, nil, sTok, rbd.Opts{})
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nRBD dispatch stage times on 32 GCDs, Large-model layer (avg ms/rank):")
	var s1, s2, inst float64
	for _, rk := range ranks {
		s1 += rk.Trace.Total(rbd.StageS1A2A)
		s2 += rk.Trace.Total(rbd.StageS2A2A)
		inst += rk.Trace.Total(rbd.StageS1Inst) + rk.Trace.Total(rbd.StageS2Inst) +
			rk.Trace.Total(rbd.StageReconstruct)
	}
	n := float64(len(ranks))
	fmt.Printf("  S1 inter-node a2a (pilots only): %6.2f ms\n", s1/n*1e3)
	fmt.Printf("  S2 intra-node a2a (replicas):    %6.2f ms\n", s2/n*1e3)
	fmt.Printf("  instantiation + reconstruction:  %6.2f ms\n", inst/n*1e3)
	fmt.Println("\npaper: RBD cuts inter-node dispatch time 52.5%, overall dispatch speedup 1.55x")
}
