// Quickstart: run one padding-free MoE layer (the paper's Listing 1
// pipeline) numerically on a small simulated expert-parallel group and
// verify the output against a direct per-token computation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xmoe/internal/moe"
	"xmoe/internal/simrt"
	"xmoe/internal/tensor"
	"xmoe/internal/topology"
)

func main() {
	const (
		world  = 4  // simulated GPUs (one Frontier node holds 8 GCDs)
		sTok   = 16 // tokens per rank
		hModel = 32
		hFFN   = 16
		nExp   = 8
		topK   = 3
	)
	cfg := moe.Config{
		NumExperts:     nExp,
		TopK:           topK,
		HModel:         hModel,
		HFFN:           hFFN,
		CapacityFactor: 1.25,
		BytesPerElem:   2,
	}

	cluster := simrt.NewCluster(topology.Frontier(), world, 7)
	cluster.Net.DisableCongestion = true
	ep := cluster.WorldGroup()
	eprPerRank := nExp / world

	err := cluster.Run(func(r *simrt.Rank) error {
		rng := tensor.NewRNG(100 + uint64(r.ID))
		x := tensor.Randn(rng, 1, sTok, hModel)
		// Gate numerically: logits = x·Wg, softmax, top-k.
		wg := tensor.Randn(tensor.NewRNG(9), 0.5, hModel, nExp) // shared router
		routing := moe.Gate(x, wg, topK)

		// Each rank owns its slice of experts; weights are derived from
		// the global expert id so every rank agrees.
		params := &moe.ExpertParams{
			W1: make([]*tensor.Tensor, eprPerRank),
			W2: make([]*tensor.Tensor, eprPerRank),
		}
		me := ep.IndexOf(r.ID)
		for le := 0; le < eprPerRank; le++ {
			erng := tensor.NewRNG(uint64(1000 + me*eprPerRank + le))
			params.W1[le] = tensor.Randn(erng, 0.05, hModel, hFFN)
			params.W2[le] = tensor.Randn(erng, 0.05, hFFN, hModel)
		}

		res := moe.PFTForward(r, ep, cfg, sTok, x, routing, params, moe.PipelineOpts{
			Numeric:    true,
			DropPolicy: moe.DropByCapacityWeight,
		})

		if r.ID == 0 {
			fmt.Printf("rank 0: routed %d token copies (%d dropped), experts processed %d rows\n",
				res.RoutedTokens, res.Dropped, res.RecvTokens)
			fmt.Printf("rank 0: output shape %v, checksum %.4f\n",
				res.Output.Shape(), res.Output.Sum())
			fmt.Println("rank 0: per-stage simulated times (µs):")
			for _, name := range r.Trace.Names() {
				fmt.Printf("  %-14s %8.2f\n", name, r.Trace.Total(name)*1e6)
			}
			fmt.Printf("rank 0: simulated layer time %.2f µs\n", r.Clock*1e6)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ok: padding-free MoE layer ran on 4 simulated GPUs")
}
