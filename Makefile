# Developer workflow for the xmoe reproduction.
#
#   make ci      - what a CI job runs: vet, build, race-enabled tests, quick bench
#   make test    - full test suite (includes the slow sweep tests)
#   make race    - full race-detector pass (go test -race ./...)
#   make race-fast - race pass over just the concurrency-heavy packages
#   make bench   - package microbenchmarks with allocation counts
#   make bench-figs - paper-figure benchmarks (slow)

GO ?= go

.PHONY: all build vet test race race-fast race-full chaos-fast verify-devent verify-zero verify-rbd verify-ft bench bench-figs bench-json bench-save ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Everything under the race detector — the verify gate for the async
# collective handles and chunked overlap pipelines. The bench sweeps run
# ~10x slower with -race, so the default 10m per-package timeout is not
# enough.
race:
	$(GO) test -race -timeout 60m ./...

# The concurrency-critical packages only: worker pool + tensor arenas
# (tensor), rank goroutines, rendezvous collectives and async handles
# (simrt), cost memoization (netsim), overlapped-span recording (trace),
# pooled + chunked pipelines (moe, rbd, kernels), and the overlapped
# distributed trainer (train).
race-fast:
	$(GO) test -race ./internal/tensor ./internal/simrt ./internal/netsim \
		./internal/trace ./internal/moe ./internal/kernels ./internal/rbd \
		./internal/collective ./internal/train ./internal/fault \
		./internal/devent ./internal/topology

# Kept as an alias for the historical target name.
race-full: race

# Event-engine verification gate: the analytic/event cross-validation
# suite (flat-topology exactness to 1e-12 s, byte-accounting identities,
# contention divergence on rail graphs, derate plumbing) plus the
# determinism tests (identical seeds + concurrent collectives must give
# bit-identical event logs and clocks), all under the race detector.
verify-devent:
	$(GO) test -race ./internal/devent ./internal/topology
	$(GO) test -race -run 'Engine|ConcurrentCollectives|CommHandleOverlap|SetLinkDerate' \
		./internal/simrt

# ZeRO verification gate: the sharded gradient-sync stack under the race
# detector — async reduction collectives (simrt), bucket partitioning and
# bit-identity (zero), the sharded trainer step + checkpoint resharding
# (train), the memmodel state predictions, and the bucketed wire-byte
# invariants (netsim).
verify-zero:
	$(GO) test -race ./internal/zero
	$(GO) test -race -run 'ZeRO|StateBytes|ShardRange|ReduceAsync|AllReduceAsync|ReduceScatterAsync|AllGatherAsync|OnDWReady|Bucketed' \
		./internal/simrt ./internal/moe ./internal/train ./internal/memmodel ./internal/netsim

# RBD verification gate: the hierarchical dispatch/combine stack under the
# race detector (rbd), the backward determinism matrix and gradient-parity
# pins (chunked==blocking and pooled==fresh bitwise, RBD==PFT/padded at
# float tolerance), and the RBD rows of the distributed trainer —
# checkpoint/shrink cycles, ZeRO stages, typed option rejections.
verify-rbd:
	$(GO) test -race ./internal/rbd
	$(GO) test -race -run 'RBD|Redundancy' ./internal/train ./internal/bench ./internal/baselines

# Fault-tolerance verification gate: the elastic-resilience stack under
# the race detector — the fault plan grammar and injector windows,
# grow/shrink cycle bit-determinism, async==blocking checkpoint weight
# parity (with the mid-write fallback pin), hot-spare promotion, the
# straggler-aware capacity rebalance, and the all-features determinism
# acceptance run.
verify-ft:
	$(GO) test -race ./internal/fault
	$(GO) test -race -run 'GrowShrink|AsyncCkpt|Spare|Mitigation|FaultTolerant|Rebalance|CheckpointBytes|BuildPFTCaps|BusyTimes' \
		./internal/train ./internal/moe ./internal/memmodel ./internal/simrt

# Chaos pass: the seeded fault-injection suite under the race detector —
# rank crashes mid-collective, stragglers, flaky retries, degraded links,
# checkpoint rollback and elastic recovery. Every schedule is
# deterministic (fault.Plan seeds), so failures reproduce exactly.
chaos-fast:
	$(GO) test -race -run 'Crash|Fault|Inject|Straggler|Flaky|Desync|ReducerPanic|Checkpoint|Gone|Derate' \
		./internal/simrt ./internal/fault ./internal/netsim ./internal/train

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/tensor \
		./internal/kernels ./internal/moe ./internal/train

bench-figs:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x .

bench-json:
	$(GO) run ./cmd/xmoe-bench -quick -json

# Record the per-PR performance trajectory into BENCH_results.json (which
# is committed): the scaling figures in quick mode for host-side ns/op and
# allocs/op stability, plus the overlap ablations at full fidelity (EP=64,
# the acceptance configuration) for the simulated speedups.
bench-save:
	$(GO) run ./cmd/xmoe-bench -quick -json -experiment fig10a,fig10b,fig11,fig12
	$(GO) run ./cmd/xmoe-bench -json -experiment abl-overlap,abl-overlap-bwd,abl-faults,abl-engine-delta,abl-zero
	@echo "BENCH_results.json updated; commit it with this PR"

# Quick CI: vet + build + race tests on the fast packages + the chaos
# suite + unit tests of the remaining packages + a quick microbenchmark
# smoke run.
ci: vet build race-fast chaos-fast verify-rbd verify-ft
	$(GO) test ./internal/... .
	$(GO) test -run=NONE -bench='BenchmarkPFTLayerForwardBackward|BenchmarkMoEFFNForwardBackward' \
		-benchmem -benchtime=10x ./internal/moe ./internal/train
