# Developer workflow for the xmoe reproduction.
#
#   make ci      - what a CI job runs: vet, build, race-enabled tests, quick bench
#   make test    - full test suite (includes the slow sweep tests)
#   make race    - race-detector pass over the concurrency-heavy packages
#   make bench   - package microbenchmarks with allocation counts
#   make bench-figs - paper-figure benchmarks (slow)

GO ?= go

.PHONY: all build vet test race bench bench-figs bench-json ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-critical packages: worker pool + tensor arenas (tensor),
# rank goroutines and rendezvous collectives (simrt), pooled pipelines
# (moe, rbd, kernels).
race:
	$(GO) test -race ./internal/tensor ./internal/simrt ./internal/moe \
		./internal/kernels ./internal/rbd ./internal/collective

# Everything under the race detector. The bench sweeps run ~10x slower
# with -race, so the default 10m per-package timeout is not enough.
race-full:
	$(GO) test -race -timeout 60m ./...

bench:
	$(GO) test -run=NONE -bench=. -benchmem ./internal/tensor \
		./internal/kernels ./internal/moe ./internal/train

bench-figs:
	$(GO) test -run=NONE -bench=. -benchmem -benchtime=1x .

bench-json:
	$(GO) run ./cmd/xmoe-bench -quick -json

# Quick CI: vet + build + race tests on the fast packages + unit tests of
# the remaining packages + a quick microbenchmark smoke run.
ci: vet build race
	$(GO) test ./internal/... .
	$(GO) test -run=NONE -bench='BenchmarkPFTLayerForwardBackward|BenchmarkMoEFFNForwardBackward' \
		-benchmem -benchtime=10x ./internal/moe ./internal/train
